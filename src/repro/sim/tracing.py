"""Span and instant-event tracing for simulations.

The tracer is the simulation's equivalent of ``systemd-bootchart``'s data
collector: models open a :class:`Span` when an activity begins (a kernel
phase, a service start job) and close it when the activity completes.  The
bootchart renderer and the experiment reports are built on these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.clock import SimClock


@dataclass(slots=True)
class Span:
    """A named activity with a start and (eventually) an end time.

    Attributes:
        name: Activity name, e.g. ``"dbus.service"`` or ``"kernel.meminit"``.
        category: Grouping key, e.g. ``"service"``, ``"kernel"``, ``"job"``.
        start_ns: Simulation time the span was opened.
        end_ns: Simulation time the span was closed, or ``None`` while open.
        attrs: Free-form attributes (unit type, deferred flag, ...).
    """

    name: str
    category: str
    start_ns: int
    end_ns: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        """Span length; raises if the span is still open."""
        if self.end_ns is None:
            raise SimulationError(f"span {self.name!r} still open")
        return self.end_ns - self.start_ns

    @property
    def closed(self) -> bool:
        """True once the span has been ended."""
        return self.end_ns is not None


@dataclass(frozen=True, slots=True)
class TraceInstant:
    """A point event, e.g. ``"boot.complete"``."""

    name: str
    category: str
    time_ns: int


class Tracer:
    """Collects :class:`Span` and :class:`TraceInstant` records in order."""

    def __init__(self, clock: "SimClock"):
        self._clock = clock
        self.spans: list[Span] = []
        self.instants: list[TraceInstant] = []

    def begin(self, name: str, category: str, **attrs: Any) -> Span:
        """Open and register a span starting now."""
        span = Span(name=name, category=category, start_ns=self._clock.now,
                    attrs=dict(attrs))
        self.spans.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` now and return it.

        Raises:
            SimulationError: If the span was already closed.
        """
        if span.end_ns is not None:
            raise SimulationError(f"span {span.name!r} ended twice")
        span.end_ns = self._clock.now
        return span

    def instant(self, name: str, category: str = "event") -> TraceInstant:
        """Record a point event happening now."""
        record = TraceInstant(name=name, category=category, time_ns=self._clock.now)
        self.instants.append(record)
        return record

    def spans_in(self, category: str) -> list[Span]:
        """All spans with the given category, in open order."""
        return [s for s in self.spans if s.category == category]

    def find(self, name: str, category: str | None = None) -> Span:
        """First span with the given name (and category if provided).

        Raises:
            KeyError: If no such span exists.
        """
        for span in self.spans:
            if span.name == name and (category is None or span.category == category):
                return span
        raise KeyError(f"no span named {name!r}" +
                       (f" in category {category!r}" if category else ""))

    def find_instant(self, name: str) -> TraceInstant:
        """First instant with the given name.

        Raises:
            KeyError: If no such instant exists.
        """
        for record in self.instants:
            if record.name == name:
                return record
        raise KeyError(f"no instant named {name!r}")

    def iter_closed(self) -> Iterator[Span]:
        """All closed spans, in open order."""
        return (s for s in self.spans if s.closed)
