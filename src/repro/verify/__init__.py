"""Simulation verification: invariant monitoring, fuzzing and oracles.

Three cooperating layers of defence against a silently wrong simulator:

* :mod:`repro.verify.monitor` — :class:`InvariantMonitor`, an opt-in
  runtime observer asserting time monotonicity, core bounds, dependency
  ordering, deferred-work timing and quiescence during live runs.
* :mod:`repro.verify.perturb` — :class:`PerturbedEventQueue`, a seeded
  chaos tie-breaker for equal-timestamp events, plus the metamorphic
  signature every legal reordering must preserve.
* :mod:`repro.verify.oracles` — property-based differential oracles
  checking simulations against closed-form analytic models and
  cross-cutting laws (BB never slows a boot; cores never hurt).
* :mod:`repro.verify.branch` — the branch-identity oracle: every cell of
  a mixed fault matrix run through the checkpoint/fork engine must be
  canonically byte-identical to a from-scratch boot.
* :mod:`repro.verify.fleet` — the fleet-identity oracle: a campaign
  streamed through the async boot service must deliver results
  byte-identical to a serial replay.
* :mod:`repro.verify.fleet_crash` — the crash-recovery oracle: a real
  service subprocess is power-cut mid-campaign at a seeded journal
  offset, restarted, and the stitched campaign must be byte-identical
  to an uninterrupted serial run.

:func:`run_verification` drives all of them; the CLI surfaces it as
``repro verify [--smoke] [--only GROUP]``.
"""

from repro.verify.branch import check_branch_identity, identity_matrix
from repro.verify.fleet import check_fleet_identity
from repro.verify.fleet_crash import check_fleet_crash
from repro.verify.monitor import InvariantMonitor, MonitorStats, Violation
from repro.verify.perturb import (PerturbedEventQueue, diff_signatures,
                                  metamorphic_signature)
from repro.verify.runner import (CheckResult, VerificationReport,
                                 run_verification)

__all__ = [
    "CheckResult",
    "InvariantMonitor",
    "MonitorStats",
    "PerturbedEventQueue",
    "VerificationReport",
    "Violation",
    "check_branch_identity",
    "check_fleet_crash",
    "check_fleet_identity",
    "diff_signatures",
    "identity_matrix",
    "metamorphic_signature",
    "run_verification",
]
