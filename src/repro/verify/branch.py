"""Branch-identity oracle: checkpoint/fork must be invisible in results.

The checkpoint/fork engine (:mod:`repro.runner.branch`) promises that
running a fault matrix as one shared prefix plus forked suffixes returns
*exactly* what from-scratch boots return — not statistically close,
byte-identical.  This module is the oracle for that promise: it builds a
mixed matrix that exercises every branch path (the null cell, early and
late divergence, no-divergence cells, degraded boots, non-branchable
path faults) and compares every branched result against a from-scratch
:func:`~repro.runner.jobs.execute_job` via
:func:`~repro.runner.branch.canonical_bytes` — the canonical encoding
that makes equal values encode equally even after a fork-pipe or worker
pool round-trip permutes a frozenset's pickle layout.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import BBConfig
from repro.faults import (DeferredFault, FaultPlan, PathFault, ServiceFault,
                          SettleFault, StorageFault)
from repro.runner.branch import (BACKEND_FORK, BACKEND_REPLAY,
                                 canonical_bytes, default_backend)
from repro.runner.jobs import SimJob, execute_job
from repro.runner.sweep import SweepRunner
from repro.workloads import opensource_tv_workload


def identity_matrix(smoke: bool = False) -> list[SimJob]:
    """The oracle's job matrix, covering every branch code path.

    Cells (all on the TV workload under full BB):

    * the null cell — answered straight from the cached prefix probe;
    * transient service failures (fork at the unit's first attempt);
    * a permanent failure of a completion-critical unit — the suffix
      ends degraded, so the branch must reproduce the degraded report;
    * settle jitter on settle-capable units (late divergence) and on a
      unit without hardware settle (no divergence: master-report
      answer);
    * storage latency spikes (early divergence — near-full suffix);
    * deferred-task failures (post-completion divergence);
    * a path fault — structurally non-branchable, must fall back to a
      from-scratch run and still match.
    """
    boot = lambda plan: SimJob.boot(opensource_tv_workload,  # noqa: E731
                                    bb=BBConfig.full(), fault_plan=plan)
    jobs = [
        boot(None),
        boot(FaultPlan(seed=21, services=(
            ServiceFault(unit="logger.service", fail_attempts=1),))),
        boot(FaultPlan(seed=22, services=(
            ServiceFault(unit="dbus.service", fail_attempts=99),))),
        boot(FaultPlan(seed=23, settles=(
            SettleFault(unit="fasttv.service", jitter=0.5),))),
        boot(FaultPlan(seed=24, settles=(
            SettleFault(unit="logger.service", jitter=0.5),))),
        boot(FaultPlan(seed=25, storage=(
            StorageFault(spike_rate=0.05, spike_ns=400_000),))),
        boot(FaultPlan(seed=26, deferred=(
            DeferredFault(task="*", fail_attempts=1),))),
        boot(FaultPlan(seed=27, paths=(
            PathFault(path="/dev/verify_branch", delay_ns=50_000_000),))),
    ]
    if not smoke:
        jobs += [
            boot(FaultPlan(seed=28, services=(
                ServiceFault(unit="tuner.service", hang_ns=30_000_000,
                             hang_rate=1.0),))),
            boot(FaultPlan(seed=29, services=(
                ServiceFault(unit="*.service", fail_rate=0.02),))),
            boot(FaultPlan(seed=30, settles=(
                SettleFault(unit="hdmi.service", multiplier=3.0),))),
            boot(FaultPlan(seed=31, deferred=(
                DeferredFault(task="journal-flush-and-rotate",
                              fail_attempts=2),))),
        ]
    return jobs


def backend_configs(smoke: bool = False) -> list[tuple[str, int]]:
    """(backend, jobs) combinations the oracle must hold under."""
    configs = [(BACKEND_REPLAY, 1), (BACKEND_REPLAY, 2)]
    if default_backend() == BACKEND_FORK:
        configs += [(BACKEND_FORK, 1), (BACKEND_FORK, 2)]
        if not smoke:
            configs.append((BACKEND_FORK, 4))
    return configs


def check_branch_identity(
        smoke: bool = False,
        progress: Callable[[str], None] | None = None,
) -> tuple[list[str], int, int]:
    """Run the oracle; returns ``(violations, boots, checks)``.

    From-scratch results are computed once; each (backend, jobs) combo
    then runs the same matrix through a cold branching
    :class:`~repro.runner.sweep.SweepRunner` and every cell is compared
    by canonical bytes.
    """
    jobs = identity_matrix(smoke)
    violations: list[str] = []
    boots = 0
    checks = 0

    scratch = [execute_job(job) for job in jobs]
    boots += len(jobs)
    expected = [canonical_bytes(result) for result in scratch]

    for backend, workers in backend_configs(smoke):
        label = f"{backend}/jobs={workers}"
        if progress is not None:
            progress(label)
        with SweepRunner(jobs=workers, branch=True, branch_backend=backend,
                         min_branch_group=2) as runner:
            branched = runner.run(jobs)
        boots += runner.stats.executed + runner.stats.prefix_boots
        if not runner.stats.branched:
            violations.append(f"{label}: no cell was actually branched")
        for index, (job, want, got) in enumerate(
                zip(jobs, expected, branched)):
            checks += 1
            if canonical_bytes(got) != want:
                violations.append(
                    f"{label}: cell {index} "
                    f"({job.fault_plan.label if job.fault_plan else 'null'}"
                    f" seed={job.fault_plan.seed if job.fault_plan else '-'})"
                    f" diverged from the from-scratch result")
    return violations, boots, checks
