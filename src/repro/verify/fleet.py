"""Fleet-identity verification: the async service vs the serial sweep.

The fleet stack re-orders everything the serial runner holds fixed —
jobs are batched by an auto-scaling pool, executed in whichever shard
frees up first, answered from cache or coalesced onto in-flight
duplicates, and streamed back over TCP with payload de-duplication.
None of that may change a single byte of a result.  This check runs a
scaled-down fleet campaign (in-process service, ephemeral port) and
relies on :mod:`repro.fleet.campaign`'s oracle: every streamed payload
must equal the canonical encoding of a from-scratch serial replay of the
same fingerprint.
"""

from __future__ import annotations

from repro.fleet import campaign


def check_fleet_identity(smoke: bool = False) -> tuple[list[str], int, int]:
    """Run the campaign oracle; returns ``(violations, boots, checks)``.

    ``boots`` counts real simulations (fleet executions plus the serial
    replay); ``checks`` counts per-job byte comparisons.
    """
    total_jobs = 300 if smoke else 2_000
    result = campaign.run(smoke=smoke, total_jobs=total_jobs)

    violations = [f"fleet-vs-serial: {mismatch}"
                  for mismatch in result.mismatches]
    if result.executed + result.cache_hits + result.coalesced < result.total_jobs:
        violations.append(
            f"fleet-vs-serial: scheduler accounted for only "
            f"{result.executed + result.cache_hits + result.coalesced} of "
            f"{result.total_jobs} tickets")
    boots = result.executed + result.unique_jobs  # fleet runs + serial replay
    checks = result.total_jobs + 1
    return violations, boots, checks
