"""Fleet-crash verification: SIGKILL mid-campaign, restart, byte-identity.

The strongest claim the durability layer makes is BB's own claim,
transplanted to the service tier: *power loss at any instant loses no
acknowledged work and changes no bytes*.  This check proves one
deterministic instance of it end to end, with real processes:

1. compute the ground truth — the canonical campaign report of an
   uninterrupted serial run of the smoke device matrix;
2. launch a real ``repro fleet serve`` subprocess with a journal and a
   chaos plan that power-cuts the process (``os._exit(137)``, no
   cleanup) the moment a chosen journal append becomes durable — an odd
   offset, so the cut lands right after a submission is journaled but
   before it is acked or executed;
3. drive a chunked campaign against it with the retrying client; a
   watchdog thread restarts the service (without chaos) the moment the
   kill is observed, on the same port, journal and cache;
4. require that the stitched-together campaign report — part answered
   by the first process, part resumed from the journal, part resubmitted
   by the client's backoff path — is **byte-identical** to the serial
   ground truth, that the crash actually happened (exit 137), that the
   restarted service really resumed journaled work, and that the client
   really retried.

Everything is seeded and offset-addressed, so a failure replays exactly.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.fleet import campaign
from repro.fleet.client import RetryPolicy

#: Exit code ``os._exit(137)`` reports — the simulated power cut.
CRASH_EXIT_CODE = 137

#: Hard ceiling on how long we wait for the campaign + processes.
_DEADLINE_S = 300.0


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _subprocess_env() -> dict[str, str]:
    """The child must import the same ``repro`` tree we are running."""
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + extra if extra else "")
    return env


def _kill_group(process: subprocess.Popen) -> None:
    """A power cut takes the worker shards with it.

    ``os._exit`` kills only the service process; its fork-based shard
    processes outlive it holding the inherited listening socket, which
    no real power loss would allow.  Each service runs as its own
    session (``start_new_session=True``), so SIGKILLing the process
    group finishes the job the simulated power cut started.
    """
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


def _terminate(process: subprocess.Popen | None) -> None:
    if process is None:
        return
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            process.kill()
            process.wait(timeout=10)
    _kill_group(process)


def _wait_port_free(port: int, deadline_s: float = 15.0) -> None:
    """Block until ``port`` can be bound again (orphan sockets gone)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        with socket.socket() as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                sock.bind(("127.0.0.1", port))
                return
            except OSError:
                time.sleep(0.05)


def check_fleet_crash(smoke: bool = False) -> tuple[list[str], int, int]:
    """Run the crash/restart oracle; returns ``(violations, boots, checks)``.

    ``boots`` counts unique simulations (the serial ground truth; the
    service re-runs the same fingerprints); ``checks`` counts the
    byte-identity comparison plus the crash/resume/retry assertions.
    """
    violations: list[str] = []
    total_jobs = 120 if smoke else 360
    specs = campaign.build_specs(smoke=True, total_jobs=total_jobs)
    chunks = campaign.chunk_specs(specs, 1)
    # Journal appends strictly alternate submit/done for a serial
    # chunked client, so an odd offset always lands on a *submit*
    # append: the submission is durable, its ack never leaves, and the
    # restart must resume it.  Offset 2k+1 cuts mid-campaign.
    crash_offset = 2 * (len(chunks) // 2) + 1
    chaos = {"seed": 7, "crash_at_journal_offset": crash_offset}

    expected, unique_jobs = campaign.serial_campaign_bytes(specs)
    boots = unique_jobs
    checks = 0

    with tempfile.TemporaryDirectory(prefix="fleet-crash-") as root:
        journal_dir = os.path.join(root, "journal")
        cache_dir = os.path.join(root, "cache")
        port = _free_port()
        base_cmd = [sys.executable, "-m", "repro", "fleet", "serve",
                    "--host", "127.0.0.1", "--port", str(port),
                    "--min-workers", "1", "--max-workers", "1",
                    "--batch-size", "4",
                    "--journal", journal_dir, "--cache-dir", cache_dir]
        env = _subprocess_env()
        first = subprocess.Popen(base_cmd + ["--chaos", json.dumps(chaos)],
                                 env=env, stdout=subprocess.DEVNULL,
                                 stderr=subprocess.DEVNULL,
                                 start_new_session=True)
        second: list[subprocess.Popen] = []

        def _restart_after_crash() -> None:
            first.wait()
            if first.returncode == CRASH_EXIT_CODE:
                # Same port, same journal, same cache — no chaos: the
                # operator's restart after a power cut.
                _kill_group(first)
                _wait_port_free(port)
                second.append(subprocess.Popen(
                    base_cmd, env=env, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL, start_new_session=True))

        watchdog = threading.Thread(target=_restart_after_crash,
                                    daemon=True)
        watchdog.start()
        try:
            outcome = campaign.run_remote(
                "127.0.0.1", port, chunks,
                retry=RetryPolicy(retries=14, backoff_base=0.25,
                                  backoff_cap=2.0, seed=3),
                connect_timeout=10.0, read_timeout=max(60.0, _DEADLINE_S))
            actual = campaign.canonical_campaign_bytes(outcome.report())

            checks += 1
            if actual != expected:
                violations.append(
                    f"fleet-crash: resumed campaign report is not "
                    f"byte-identical to the uninterrupted serial run "
                    f"({len(outcome.payloads)} payloads, "
                    f"{len(outcome.errors)} errors)")
            checks += 1
            if first.returncode != CRASH_EXIT_CODE:
                violations.append(
                    f"fleet-crash: chaos never fired — first service "
                    f"exited {first.returncode} instead of "
                    f"{CRASH_EXIT_CODE} at journal append {crash_offset}")
            checks += 1
            journal = outcome.status.get("journal", {})
            if int(journal.get("resumed", 0)) < 1:
                violations.append(
                    "fleet-crash: the restarted service resumed no "
                    "journaled submissions — the write-ahead log never "
                    "did its job")
            checks += 1
            if outcome.attempts <= outcome.chunks:
                violations.append(
                    "fleet-crash: the client never retried — the crash "
                    "window missed every submission")
        except Exception as exc:  # noqa: BLE001 - report, don't crash CI
            violations.append(f"fleet-crash: campaign raised {exc!r}")
        finally:
            deadline = time.monotonic() + 15.0
            watchdog.join(timeout=max(0.0, deadline - time.monotonic()))
            _terminate(first)
            for process in second:
                _terminate(process)
    return violations, boots, checks
