"""Generation-identity verification: rollouts replay, stores round-trip.

Two oracles pin the OTA layer (:mod:`repro.generations`):

1. **Serial == fleet rollout.**  The same campaign staged through the
   async fleet service must produce a report byte-identical to the
   serial-runner path — the execution tier may dedup, cache, batch and
   stream however it likes, but the campaign's *decisions* (health
   verdicts, rollbacks, final slot states) may not move by a byte.  Run
   for both a regressing target (rollbacks fire) and a clean one (no
   false positives).
2. **Store round-trips.**  ``rollback(commit(g)) == g`` through the
   on-disk :class:`~repro.generations.GenerationStore`, and every loaded
   object re-fingerprints to its own content address.
"""

from __future__ import annotations

import tempfile

from repro.generations import (Generation, GenerationStore,
                               canonical_report_bytes, demo_store,
                               run_rollout)


def check_generation_identity(smoke: bool = False
                              ) -> tuple[list[str], int, int]:
    """Run both oracles; returns ``(violations, boots, checks)``."""
    violations: list[str] = []
    boots = 0
    checks = 0
    devices = 6 if smoke else 12
    waves = 2 if smoke else 3

    # ------------------------------------------- serial vs fleet rollouts
    for kind in ("regressed", "clean"):
        with tempfile.TemporaryDirectory() as tmp:
            store = demo_store(tmp, kind)
            serial = run_rollout(store, devices=devices, waves=waves)
            fleet = run_rollout(store, devices=devices, waves=waves,
                                use_fleet=True, jobs=2)
            # Each path boots the unique trial once (plus the rollback
            # re-verification boots on the regressed target).
            boots += 2 * sum(wave["unique_boots"]
                             for wave in serial["waves"])
            checks += 1
            if (canonical_report_bytes(serial)
                    != canonical_report_bytes(fleet)):
                violations.append(
                    f"generation-identity/{kind}: fleet rollout report "
                    f"differs from the serial replay")
            checks += 1
            if kind == "clean" and serial["rollbacks"] != 0:
                violations.append(
                    f"generation-identity/clean: {serial['rollbacks']} "
                    f"false-positive rollbacks on an unchanged boot "
                    f"profile")
            if kind == "regressed" and serial["rollbacks"] == 0:
                violations.append(
                    "generation-identity/regressed: planted regression "
                    "produced no rollbacks")

    # ------------------------------------------------- store round-trips
    with tempfile.TemporaryDirectory() as tmp:
        store = GenerationStore.init(tmp)
        head = None
        committed: list[tuple[str, Generation]] = []
        for index, features in enumerate((("preparser",),
                                          ("preparser", "rcu_booster"),
                                          ())):
            generation = Generation(label=f"rt-{index}", workload="tv",
                                    features=features, parent=head,
                                    notes=f"round-trip probe {index}")
            head = store.commit(generation)
            committed.append((head, generation))
        for fingerprint, generation in committed:
            checks += 1
            if store.get(fingerprint) != generation:
                violations.append(
                    f"generation-identity: object {fingerprint[:12]} "
                    f"loads unequal to what was committed")
        for fingerprint, generation in reversed(committed):
            popped = store.rollback()
            checks += 1
            if popped != generation:
                violations.append(
                    f"generation-identity: rollback(commit(g)) returned "
                    f"{popped.label!r}, expected {generation.label!r}")
        checks += 1
        if store.head() is not None:
            violations.append(
                f"generation-identity: ref still points at "
                f"{store.head()!r} after rolling back every commit")
    return violations, boots, checks
