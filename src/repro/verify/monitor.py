"""The runtime invariant monitor.

:class:`InvariantMonitor` is an opt-in observer that the simulation engine
(:mod:`repro.sim.engine`), the CPU scheduler (:mod:`repro.sim.cpu`) and the
unit executor (:mod:`repro.initsys.executor`) report to when one is
attached via ``monitor.attach(sim)`` (which sets ``sim.monitor``).  Every
hook re-derives an invariant from first principles instead of trusting the
subsystem's own bookkeeping, so a scheduling bug — the kind that would
silently corrupt every figure reproduced from the paper — trips a loud
:class:`~repro.errors.InvariantViolationError` at the simulated instant it
happens.

Checked invariants:

* **time-monotonic** — the event loop never pops an event scheduled
  before the current simulated time (per-boot monotonicity of the clock).
* **cores-bounded** — the CPU never has more running slices than cores,
  and never accounts negative idle capacity.
* **ordering-respected** — no unit start job fires its ``started``
  completion before every non-ignored ordering predecessor satisfied its
  gate (settled for strong ``Requires``/``After`` edges, launched for
  weak ``Wants`` edges).  Edges dropped by an edge filter (the BB Group
  Isolator) are excused only if the executor *recorded* the drop.
* **deferred-after-completion** — work deferred past boot completion
  (Boot-up Engine / Deferred Executor) never started before the boot
  completed.
* **quiescent** — at the end of a successful boot no non-daemon process
  is still alive (a deadlocked waiter), and every completion unit is
  ready.

The monitor is engine-agnostic: hooks receive live objects and never
import BB-specific modules, so it also works on bare :class:`Simulator`
micro-benches.  With ``strict=True`` (the default) the first violation
raises immediately; with ``strict=False`` violations accumulate in
:attr:`violations` for harness-style reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import InvariantViolationError
from repro.initsys.transaction import EdgeKind, JobState

if TYPE_CHECKING:
    from repro.initsys.executor import JobExecutor
    from repro.initsys.transaction import Job
    from repro.sim.cpu import CPU
    from repro.sim.engine import Simulator
    from repro.sim.events import ScheduledEvent


@dataclass(slots=True)
class MonitorStats:
    """How much checking one monitor did (for harness reports).

    Attributes:
        events_checked: Event-loop pops validated for time monotonicity.
        cpu_checks: Scheduler dispatch rounds validated for core bounds.
        job_starts_checked: Unit start/settle transitions validated
            against their ordering predecessors.
        finishes: Quiescence audits performed (one per successful boot).
        boots: Simulations this monitor was attached to.
    """

    events_checked: int = 0
    cpu_checks: int = 0
    job_starts_checked: int = 0
    finishes: int = 0
    boots: int = 0

    @property
    def total_checks(self) -> int:
        """Every individual invariant evaluation performed."""
        return (self.events_checked + self.cpu_checks
                + self.job_starts_checked + self.finishes)


@dataclass(slots=True)
class Violation:
    """One caught invariant violation.

    Attributes:
        invariant: Machine-readable invariant name.
        time_ns: Simulated time of the offence.
        detail: Human-readable description.
    """

    invariant: str
    time_ns: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant} @ {self.time_ns} ns] {self.detail}"


class InvariantMonitor:
    """Runtime invariant checker for one or more simulations.

    Args:
        strict: Raise :class:`InvariantViolationError` on the first
            violation (default).  ``False`` records violations without
            raising, for fuzzing harnesses that want to keep going.

    One monitor may be re-attached to successive simulations (its stats
    accumulate); per-boot state resets on :meth:`attach`.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.stats = MonitorStats()
        self.violations: list[Violation] = []
        self._sim: "Simulator | None" = None
        self._last_event_time = 0
        self._executors: list["JobExecutor"] = []

    # ------------------------------------------------------------ lifecycle

    def attach(self, sim: "Simulator") -> "Simulator":
        """Observe ``sim``: set ``sim.monitor`` and reset per-boot state."""
        self._sim = sim
        self._last_event_time = sim.now
        self._executors = []
        self.stats.boots += 1
        sim.monitor = self
        return sim

    @property
    def ok(self) -> bool:
        """True while no invariant has been violated."""
        return not self.violations

    def _flag(self, invariant: str, detail: str) -> None:
        time_ns = self._sim.now if self._sim is not None else -1
        violation = Violation(invariant=invariant, time_ns=time_ns,
                              detail=detail)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolationError(invariant, str(violation))

    # ---------------------------------------------------------- engine hook

    def on_event(self, sim: "Simulator", event: "ScheduledEvent") -> None:
        """Validate one event-loop pop (called before the clock advances)."""
        self.stats.events_checked += 1
        if event.time_ns < sim.now:
            self._flag("time-monotonic",
                       f"event seq={event.seq} at {event.time_ns} ns popped "
                       f"with the clock already at {sim.now} ns")
        if event.time_ns < self._last_event_time:
            self._flag("time-monotonic",
                       f"event seq={event.seq} at {event.time_ns} ns popped "
                       f"after an event at {self._last_event_time} ns")
        self._last_event_time = max(self._last_event_time, event.time_ns)

    # ------------------------------------------------------------- CPU hook

    def on_cpu(self, cpu: "CPU") -> None:
        """Validate scheduler accounting after a dispatch round."""
        self.stats.cpu_checks += 1
        running = cpu.cores - cpu.idle_cores
        if running > cpu.cores:
            self._flag("cores-bounded",
                       f"{running} slices running on {cpu.cores} cores")
        if cpu.idle_cores < 0 or cpu.idle_cores > cpu.cores:
            self._flag("cores-bounded",
                       f"idle-core count {cpu.idle_cores} outside "
                       f"[0, {cpu.cores}]")
        if cpu.idle_cores > 0 and cpu.runnable > 0:
            # Work conservation: a dispatch round never leaves runnable
            # work queued while cores are idle.
            self._flag("cores-bounded",
                       f"{cpu.runnable} runnable processes queued while "
                       f"{cpu.idle_cores} cores are idle")

    # -------------------------------------------------------- executor hook

    def on_executor(self, executor: "JobExecutor") -> None:
        """Register a job executor whose transaction ordering is audited."""
        self._executors.append(executor)

    def on_job_started(self, job: "Job") -> None:
        """Validate that ``job``'s ordering predecessors were satisfied."""
        self.stats.job_starts_checked += 1
        executor = self._executor_for(job)
        if executor is None:
            return
        ignored = executor.ignored_edges
        transaction = executor.transaction
        for edge in transaction.predecessors(job.name):
            if any(edge is dropped for dropped in ignored):
                continue  # the Group Isolator recorded this drop
            predecessor = transaction.job(edge.predecessor)
            gate = (predecessor.settled if edge.kind is EdgeKind.STRONG
                    else predecessor.started)
            if gate is not None and not gate.fired:
                kind = "strong" if edge.kind is EdgeKind.STRONG else "weak"
                self._flag("ordering-respected",
                           f"{job.name} started before its {kind} "
                           f"predecessor {edge.predecessor} "
                           f"{'settled' if kind == 'strong' else 'launched'}")

    def _executor_for(self, job: "Job") -> "JobExecutor | None":
        for executor in self._executors:
            if job.name in executor.transaction:
                return executor
        return None

    # ------------------------------------------------------ quiescence hook

    def finish(self, simulation: Any) -> None:
        """Audit a *successfully completed* :class:`BootSimulation`.

        Called by ``BootSimulation.run`` after quiescence; degraded boots
        (which legitimately wedge or fail) skip this audit.
        """
        self.stats.finishes += 1
        sim = simulation.sim
        manager = simulation.manager
        deadlocked = [p.name for p in sim.processes
                      if p.alive and not p.daemon]
        if deadlocked:
            self._flag("quiescent",
                       "processes still blocked at quiescence: "
                       + ", ".join(sorted(deadlocked)))
        if manager is None or manager.completion is None:
            self._flag("quiescent", "boot finished without a completion record")
            return
        completion_ns = manager.completion.time_ns
        for process in manager.deferred_processes:
            if process.started_at_ns is None:
                continue
            if process.started_at_ns < completion_ns:
                self._flag("deferred-after-completion",
                           f"{process.name} started at "
                           f"{process.started_at_ns} ns, before boot "
                           f"completion at {completion_ns} ns")
        assert manager.transaction is not None
        for name in manager.config.completion_units:
            job = manager.transaction.job(name)
            if job.state not in (JobState.READY, JobState.DONE):
                self._flag("quiescent",
                           f"completion unit {name} finished in state "
                           f"{job.state.name} on a boot reported complete")
