"""Property-based differential oracles.

Each oracle runs a live simulation and checks its output against a
*closed-form analytic model* computed independently of the simulator's
code paths, or against a cross-cutting law two simulations must jointly
satisfy:

* **storage I/O** — an uncontended read/write of ``B`` bytes takes
  exactly ``request_latency + ceil(B / throughput)`` nanoseconds,
* **parallel speedup** — ``n`` identical independent compute tasks on
  ``c`` cores finish with speedup exactly ``min(n, c)`` when the work
  divides evenly (and within one task of the work-conservation bound
  otherwise),
* **core monotonicity (engine level)** — with no shared resources,
  adding cores never increases the makespan,
* **BB law** — a BB-enabled boot reaches boot-to-UX no later than the
  vanilla boot of the same workload,
* **core monotonicity (boot level)** — adding cores never increases boot
  time beyond a small scheduling-anomaly tolerance (Graham's classic
  multiprocessor anomaly applies once contended resources — the storage
  channel, RCU — enter the picture, so the boot-level law carries an
  epsilon where the engine-level one is exact).

Oracles return lists of violation strings (empty = pass) so the
verification harness and ``hypothesis`` tests can share them.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.core.bb import BootSimulation
from repro.core.config import BBConfig
from repro.hw.storage import AccessPattern, StorageDevice
from repro.quantities import NSEC_PER_SEC
from repro.sim.engine import Simulator
from repro.sim.process import Compute
from repro.workloads.base import Workload

#: Scheduling-anomaly allowance for the boot-level core-monotonicity law.
#: Graham-style anomalies on the contended boot graph measure < 0.7 %
#: across seeds; 2 % keeps the law falsifiable without flaking.
CORE_ANOMALY_TOLERANCE = 0.02


# ----------------------------------------------------------- closed forms

def expected_transfer_ns(nbytes: int, bps: int, latency_ns: int) -> int:
    """Independent closed form for one uncontended storage request."""
    if nbytes <= 0:
        return latency_ns
    return latency_ns + -(-nbytes * NSEC_PER_SEC // bps)


def check_storage_io(nbytes: int, seq_bps: int, rand_bps: int,
                     latency_ns: int, write: bool = False,
                     pattern: AccessPattern = AccessPattern.SEQUENTIAL
                     ) -> list[str]:
    """Simulate one uncontended transfer and compare to the closed form."""
    sim = Simulator(cores=1)
    device = StorageDevice("oracle", seq_read_bps=seq_bps,
                           rand_read_bps=rand_bps,
                           seq_write_bps=seq_bps, rand_write_bps=rand_bps,
                           request_latency_ns=latency_ns).attach(sim)

    def transfer():
        if write:
            yield from device.write(nbytes, pattern)
        else:
            yield from device.read(nbytes, pattern)

    sim.spawn(transfer(), name="io")
    sim.run()
    bps = seq_bps if pattern is AccessPattern.SEQUENTIAL else rand_bps
    expected = expected_transfer_ns(nbytes, bps, latency_ns)
    if sim.now != expected:
        return [f"storage-io: {nbytes} B at {bps} B/s "
                f"(latency {latency_ns} ns, write={write}) took {sim.now} ns, "
                f"closed form says {expected} ns"]
    return []


def check_parallel_speedup(tasks: int, work_ns: int, cores: int,
                           quantum_ns: int = 1_000_000) -> list[str]:
    """N identical independent compute tasks against ``min(n, c)`` speedup.

    Exact when ``tasks <= cores`` (makespan == work) or when the task
    count divides evenly over the cores (makespan == total/cores);
    otherwise the makespan must sit within one task of the
    work-conservation lower bound.
    """
    sim = Simulator(cores=cores, switch_cost_ns=0, quantum_ns=quantum_ns)

    def worker():
        yield Compute(work_ns)

    for index in range(tasks):
        sim.spawn(worker(), name=f"w{index}")
    sim.run()
    violations = []
    total = tasks * work_ns
    if sim.cpu.stats.busy_ns != total:
        violations.append(
            f"parallel-speedup: busy {sim.cpu.stats.busy_ns} ns != total "
            f"demand {total} ns (work not conserved)")
    if tasks <= cores:
        expected = work_ns
        if sim.now != expected:
            violations.append(
                f"parallel-speedup: {tasks} tasks on {cores} cores took "
                f"{sim.now} ns, expected {expected} ns (speedup min(n,c))")
    elif tasks % cores == 0:
        expected = total // cores
        if sim.now != expected:
            violations.append(
                f"parallel-speedup: {tasks}x{work_ns} ns on {cores} cores "
                f"took {sim.now} ns, expected {expected} ns")
    else:
        floor = -(-total // cores)
        if not floor <= sim.now <= floor + work_ns:
            violations.append(
                f"parallel-speedup: {tasks}x{work_ns} ns on {cores} cores "
                f"took {sim.now} ns, outside [{floor}, {floor + work_ns}]")
    return violations


def check_engine_core_monotonicity(demands: list[int],
                                   cores_low: int, cores_high: int
                                   ) -> list[str]:
    """Uncontended compute: more cores never means a later finish."""
    def makespan(cores: int) -> int:
        sim = Simulator(cores=cores, switch_cost_ns=0)

        def worker(ns: int):
            yield Compute(ns)

        for index, ns in enumerate(demands):
            sim.spawn(worker(ns), name=f"w{index}")
        sim.run()
        return sim.now

    low, high = makespan(cores_low), makespan(cores_high)
    if high > low:
        return [f"core-monotonicity(engine): {len(demands)} tasks took "
                f"{high} ns on {cores_high} cores but {low} ns on "
                f"{cores_low} cores"]
    return []


def check_prediction_matches_des(workload_factory: Callable[[], Workload],
                                 bb: BBConfig | None = None,
                                 cores: int | None = None) -> list[str]:
    """The closed-form boot predictor against a live DES boot.

    gem5-style differential validation: the predictor solves the same
    boot analytically (:mod:`repro.analysis.predict`); the DES executes
    it event by event.  Completion time must agree within
    ``PREDICTION_TOLERANCE`` (the model is currently exact — the
    tolerance is a guard band, not slack), the serial stage breakdown
    must agree exactly, and every per-unit ready time the prediction
    covers must match the simulator's.
    """
    from repro.analysis.predict import PREDICTION_TOLERANCE, predict

    report = BootSimulation(workload_factory(), bb, cores=cores).run()
    prediction = predict(workload_factory(), bb, cores=cores)
    violations = []
    allowance = max(1, int(PREDICTION_TOLERANCE * report.boot_complete_ns))
    delta = prediction.boot_complete_ns - report.boot_complete_ns
    if abs(delta) > allowance:
        violations.append(
            f"predicted: boot {prediction.boot_complete_ns} ns vs DES "
            f"{report.boot_complete_ns} ns (delta {delta} ns exceeds "
            f"{PREDICTION_TOLERANCE:.1%} tolerance)")
    if prediction.kernel_ns != report.stages.kernel_ns:
        violations.append(
            f"predicted: kernel stage {prediction.kernel_ns} ns vs DES "
            f"{report.stages.kernel_ns} ns")
    if prediction.init_init_ns != report.stages.init_init_ns:
        violations.append(
            f"predicted: manager init {prediction.init_init_ns} ns vs DES "
            f"{report.stages.init_init_ns} ns")
    mismatched = [name for name, ready_ns in prediction.unit_ready_ns.items()
                  if report.unit_ready_ns.get(name) != ready_ns]
    if mismatched:
        violations.append(
            f"predicted: {len(mismatched)} unit ready times diverge "
            f"(first: {mismatched[0]!r})")
    return violations


# ------------------------------------------------------ cross-cutting laws

def check_bb_not_slower(workload_factory: Callable[[], Workload],
                        monitor_factory: Callable[[], object] | None = None
                        ) -> list[str]:
    """BB-enabled boot-to-UX must not exceed the vanilla boot's."""
    def boot(config: BBConfig) -> int:
        monitor = monitor_factory() if monitor_factory is not None else None
        report = BootSimulation(workload_factory(), config,
                                monitor=monitor).run()
        return report.boot_complete_ns

    vanilla = boot(BBConfig.none())
    boosted = boot(BBConfig.full())
    if boosted > vanilla:
        return [f"bb-not-slower: {workload_factory()!r} booted in "
                f"{boosted} ns with BB but {vanilla} ns without"]
    return []


def check_boot_core_monotonicity(workload_factory: Callable[[], Workload],
                                 cores_low: int, cores_high: int,
                                 bb: BBConfig | None = None,
                                 tolerance: float = CORE_ANOMALY_TOLERANCE
                                 ) -> list[str]:
    """Adding cores must not slow a boot beyond the anomaly tolerance."""
    def boot(cores: int) -> int:
        return BootSimulation(workload_factory(), bb,
                              cores=cores).run().boot_complete_ns

    low, high = boot(cores_low), boot(cores_high)
    if high > low * (1.0 + tolerance):
        return [f"core-monotonicity(boot): {workload_factory()!r} took "
                f"{high} ns on {cores_high} cores vs {low} ns on "
                f"{cores_low} cores (+{(high / low - 1) * 100:.2f} %, "
                f"tolerance {tolerance * 100:.1f} %)"]
    return []


# ------------------------------------------------------------ random cases

def random_io_case(rng: random.Random) -> dict:
    """Draw one storage-oracle parameter set."""
    return {
        "nbytes": rng.randrange(0, 64 * 1024 * 1024),
        "seq_bps": rng.randrange(1_000_000, 2_000_000_000),
        "rand_bps": rng.randrange(500_000, 1_000_000_000),
        "latency_ns": rng.randrange(0, 2_000_000),
        "write": rng.random() < 0.5,
        "pattern": rng.choice((AccessPattern.SEQUENTIAL,
                               AccessPattern.RANDOM)),
    }


def random_speedup_case(rng: random.Random) -> dict:
    """Draw one parallel-speedup parameter set."""
    return {
        "tasks": rng.randrange(1, 17),
        "work_ns": rng.randrange(1, 20) * 500_000,
        "cores": rng.randrange(1, 9),
    }
