"""Schedule-perturbation fuzzing: the chaos tie-breaker.

The production :class:`~repro.sim.events.EventQueue` orders its heap by
``(time_ns, seq)`` — FIFO among equal-timestamp events.  That FIFO order
is an *implementation choice*, not a semantic guarantee: any permutation
of same-time events is a legal schedule of the modelled system (real
hardware gives no such ordering promise).  :class:`PerturbedEventQueue`
replaces the tie-break with a seeded random key, producing a different —
but still deterministic and time-ordered — interleaving per seed.

Properties that must survive any legal reordering (metamorphic oracles):

* the **completion set** — which units started, became ready, failed,
  were deferred — is identical,
* the **total work** moved through the hardware models is identical:
  bytes read/written, storage requests, ``synchronize_rcu`` calls,
* a *repeated* run under the **same seed** is byte-identical down to the
  exported JSON report (perturbation composes with, never replaces,
  determinism).

Wall-clock-style outputs (boot-completion time, CPU busy time) are *not*
invariant — contention, RCU spinning, and path polling legitimately
depend on the interleaving — which is exactly why the oracle compares
:func:`metamorphic_signature` and not whole reports.
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.sim.events import EventQueue, ScheduledEvent

if TYPE_CHECKING:
    from repro.analysis.metrics import BootReport
    from repro.core.bb import BootSimulation

#: Bits reserved for the FIFO sequence below the random tie key.  The
#: sequence keeps heap keys unique (and same-seed runs deterministic);
#: 2**40 events per simulation is far beyond any real boot.
_SEQ_BITS = 40


class PerturbedEventQueue(EventQueue):
    """An event queue whose equal-timestamp pop order is seed-shuffled.

    The heap key becomes ``(time_ns, (random << 40) | seq)``: time order
    is untouched, while same-time events pop in an order drawn from
    ``seed``.  The embedded ``seq`` keeps keys unique, so comparison never
    falls through to the event object and a given seed always produces
    the same permutation.  ``pop``/``peek_time``/``cancel`` are inherited
    unchanged.
    """

    def __init__(self, seed: int):
        super().__init__()
        self.seed = seed
        self._rng = random.Random(seed)

    def push(self, time_ns: int, callback, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time_ns`` with a chaotic tie."""
        if time_ns < 0:
            raise SimulationError(
                f"cannot schedule event at negative time {time_ns}")
        seq = self._seq
        event = ScheduledEvent(time_ns, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        tie = (self._rng.getrandbits(32) << _SEQ_BITS) | seq
        heapq.heappush(self._heap, (time_ns, tie, event))
        return event


def metamorphic_signature(report: "BootReport",
                          simulation: "BootSimulation | None" = None
                          ) -> dict[str, Any]:
    """The reorder-invariant fingerprint of one completed boot.

    Two boots of the same inputs under *any* legal same-time reordering
    must produce equal signatures; a difference means the simulator's
    outcome depends on accidental FIFO scheduling order — a bug.

    Args:
        report: The boot's :class:`~repro.analysis.metrics.BootReport`.
        simulation: The finished :class:`BootSimulation`, if available;
            adds hardware-level work totals (storage bytes/requests,
            RCU sync count) to the signature.
    """
    signature: dict[str, Any] = {
        "workload": report.workload,
        "features": tuple(report.features),
        "started_units": frozenset(report.unit_started_ns),
        "ready_units": frozenset(report.unit_ready_ns),
        "failed_units": frozenset(report.failed_units.items()),
        "unsettled_units": frozenset(report.unsettled_units),
        "deferred_tasks": frozenset(report.deferred_task_names),
        "deferred_failed": frozenset(report.deferred_failed),
        "bb_group": frozenset(report.bb_group),
        "injected_faults": tuple(sorted(report.injected_faults.items())),
        "rcu_sync_count": report.rcu_sync_count,
    }
    if simulation is not None:
        storage = simulation.platform.storage
        signature.update(
            bytes_read=storage.bytes_read,
            bytes_written=storage.bytes_written,
            storage_requests=storage.requests,
        )
    return signature


def diff_signatures(base: dict[str, Any],
                    perturbed: dict[str, Any]) -> list[str]:
    """Human-readable differences between two metamorphic signatures."""
    differences = []
    for key in sorted(set(base) | set(perturbed)):
        left, right = base.get(key), perturbed.get(key)
        if left != right:
            differences.append(f"{key}: base {left!r} != perturbed {right!r}")
    return differences
