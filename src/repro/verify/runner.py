"""The end-to-end verification harness behind ``repro verify``.

Nine check groups, each producing a :class:`CheckResult`:

* **invariant-monitor** — boot every scenario with a strict
  :class:`~repro.verify.monitor.InvariantMonitor` attached, so every
  event pop, dispatch round and unit start is audited live.
* **schedule-perturbation** — boot each scenario once FIFO and ``K``
  times under seeded chaotic tie-breaking
  (:class:`~repro.verify.perturb.PerturbedEventQueue`), asserting the
  metamorphic signature is schedule-invariant and that a repeated run of
  one perturbed seed exports byte-identical JSON.
* **analytic-oracles** — random storage-I/O and parallel-speedup cases
  checked against closed forms, plus engine-level core monotonicity.
* **predicted** — the closed-form boot-time predictor
  (:mod:`repro.analysis.predict`) against the DES on every unperturbed
  scenario across several core counts (gem5-style differential
  validation), plus sweep-cache identity for
  :class:`~repro.analysis.predict.SweepPredictor`.
* **cross-cutting-laws** — "BB never slows a boot" and "more cores never
  slow a boot (modulo scheduling anomalies)" over generated workloads.
* **branch-identity** — every cell of a mixed fault matrix run through
  the checkpoint/fork engine (:mod:`repro.runner.branch`, both backends,
  serial and parallel) must be canonically byte-identical to a
  from-scratch boot (:mod:`repro.verify.branch`).
* **fleet-identity** — a scaled-down fleet campaign through the async
  boot service (scheduler, worker shards, TCP streaming, payload dedup)
  must deliver results byte-identical to a serial replay
  (:mod:`repro.verify.fleet`).
* **generation-identity** — an OTA rollout campaign staged through the
  fleet service must report byte-identically to its serial replay (for
  both a regressing and a clean target), and generation commits must
  round-trip through the on-disk store: ``rollback(commit(g)) == g``
  (:mod:`repro.verify.generations`).
* **fleet-crash** — a real ``repro fleet serve`` subprocess is
  power-cut (``os._exit(137)``) mid-campaign at a seeded journal
  offset, restarted on the same journal/cache, and the campaign —
  stitched together from pre-crash results, journal-resumed work and
  the client's retry/backoff path — must be byte-identical to an
  uninterrupted serial run (:mod:`repro.verify.fleet_crash`).

``smoke=True`` is the CI profile: it still runs well over fifty
monitored/perturbed/property-generated boots but finishes in seconds.
``repro verify --only GROUP`` runs a single group by name — the
fleet-crash CI gate uses it to keep its wall time to the one
crash/restart cycle.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.export import report_to_json
from repro.core.bb import BootSimulation
from repro.core.config import BBConfig
from repro.faults import build_preset
from repro.verify import oracles
from repro.verify.monitor import InvariantMonitor
from repro.verify.perturb import (PerturbedEventQueue, diff_signatures,
                                  metamorphic_signature)
from repro.workloads import (camera_workload, opensource_tv_workload,
                             phone_workload, wearable_workload)
from repro.workloads.base import Workload
from repro.workloads.generator import GeneratorParams, generate_workload


@dataclass(slots=True)
class CheckResult:
    """Outcome of one verification group.

    Attributes:
        name: Group name (e.g. ``"schedule-perturbation"``).
        boots: Full boot simulations executed by the group.
        checks: Individual invariant/oracle evaluations performed.
        violations: Human-readable failures (empty = pass).
        duration_s: Wall-clock seconds the group took.
    """

    name: str
    boots: int = 0
    checks: int = 0
    violations: list[str] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(slots=True)
class VerificationReport:
    """Aggregate outcome of one ``run_verification`` pass."""

    seed: int
    smoke: bool
    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def total_boots(self) -> int:
        return sum(result.boots for result in self.results)

    @property
    def total_checks(self) -> int:
        return sum(result.checks for result in self.results)

    @property
    def violations(self) -> list[str]:
        return [violation for result in self.results
                for violation in result.violations]

    def summary(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        mode = "smoke" if self.smoke else "full"
        lines = [f"verification ({mode}, seed={self.seed}):"]
        for result in self.results:
            status = "ok" if result.ok else f"{len(result.violations)} FAILED"
            lines.append(f"  {result.name:<24} {result.boots:>4} boots  "
                         f"{result.checks:>6} checks  "
                         f"{result.duration_s:>6.2f}s  {status}")
            for violation in result.violations:
                lines.append(f"    ! {violation}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"  total: {self.total_boots} boots, "
                     f"{self.total_checks} checks -> {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "smoke": self.smoke,
            "ok": self.ok,
            "total_boots": self.total_boots,
            "total_checks": self.total_checks,
            "groups": [{
                "name": result.name,
                "boots": result.boots,
                "checks": result.checks,
                "duration_s": round(result.duration_s, 3),
                "violations": list(result.violations),
            } for result in self.results],
        }


@dataclass(slots=True)
class _Scenario:
    """One boot configuration exercised by the harness."""

    label: str
    workload_factory: Callable[[], Workload]
    bb: BBConfig
    fault_preset: str | None = None

    def build(self, monitor: InvariantMonitor | None = None,
              event_queue=None) -> BootSimulation:
        plan = (build_preset(self.fault_preset, seed=11)
                if self.fault_preset is not None else None)
        return BootSimulation(self.workload_factory(), self.bb,
                              fault_plan=plan, monitor=monitor,
                              event_queue=event_queue)


def _generated(seed: int, services: int = 14) -> Callable[[], Workload]:
    return lambda: generate_workload(GeneratorParams(seed=seed,
                                                     services=services))


def _scenarios(smoke: bool) -> list[_Scenario]:
    scenarios = [
        _Scenario("tv/full", opensource_tv_workload, BBConfig.full()),
        _Scenario("tv/none", opensource_tv_workload, BBConfig.none()),
        _Scenario("camera/full", camera_workload, BBConfig.full()),
        _Scenario("gen14s5/full", _generated(5), BBConfig.full()),
        _Scenario("gen14s6/none", _generated(6), BBConfig.none()),
        _Scenario("gen14s7/full+flaky", _generated(7), BBConfig.full(),
                  fault_preset="flaky-services"),
    ]
    if not smoke:
        scenarios += [
            _Scenario("phone/full", phone_workload, BBConfig.full()),
            _Scenario("wearable/full", wearable_workload, BBConfig.full()),
            _Scenario("gen20s8/full+storm", _generated(8, services=20),
                      BBConfig.full(), fault_preset="storage-storm"),
            _Scenario("gen20s9/none", _generated(9, services=20),
                      BBConfig.none()),
        ]
    return scenarios


# --------------------------------------------------------------- the groups

def _check_monitored_boots(scenarios: list[_Scenario]) -> CheckResult:
    result = CheckResult("invariant-monitor")
    for scenario in scenarios:
        monitor = InvariantMonitor(strict=False)
        try:
            scenario.build(monitor=monitor).run()
        except Exception as exc:  # noqa: BLE001 - report, don't crash CI
            result.violations.append(f"{scenario.label}: boot raised {exc!r}")
        result.boots += 1
        result.checks += monitor.stats.total_checks
        result.violations.extend(f"{scenario.label}: {violation}"
                                 for violation in monitor.violations)
    return result


def _check_perturbation(scenarios: list[_Scenario], seed: int,
                        perturbations: int) -> CheckResult:
    result = CheckResult("schedule-perturbation")
    rng = random.Random(seed)
    for scenario in scenarios:
        baseline_sim = scenario.build(monitor=InvariantMonitor(strict=True))
        baseline = metamorphic_signature(baseline_sim.run(), baseline_sim)
        result.boots += 1
        seeds = [rng.getrandbits(32) for _ in range(perturbations)]
        for tie_seed in seeds:
            monitor = InvariantMonitor(strict=False)
            sim = scenario.build(monitor=monitor,
                                 event_queue=PerturbedEventQueue(tie_seed))
            signature = metamorphic_signature(sim.run(), sim)
            result.boots += 1
            result.checks += monitor.stats.total_checks
            result.violations.extend(
                f"{scenario.label}/tie={tie_seed}: {violation}"
                for violation in monitor.violations)
            differences = diff_signatures(baseline, signature)
            result.checks += len(baseline)
            result.violations.extend(
                f"{scenario.label}/tie={tie_seed}: metamorphic {difference}"
                for difference in differences)
        # Determinism composes with perturbation: the same tie seed must
        # reproduce the run down to the exported JSON bytes.
        replay_seed = seeds[0]
        exports = []
        for _ in range(2):
            sim = scenario.build(event_queue=PerturbedEventQueue(replay_seed))
            exports.append(report_to_json(sim.run()))
            result.boots += 1
        result.checks += 1
        if exports[0] != exports[1]:
            result.violations.append(
                f"{scenario.label}/tie={replay_seed}: same-seed replays "
                f"exported different JSON")
    return result


def _check_analytic_oracles(seed: int, cases: int) -> CheckResult:
    result = CheckResult("analytic-oracles")
    rng = random.Random(seed ^ 0xA11A)
    for _ in range(cases):
        result.checks += 1
        result.violations.extend(
            oracles.check_storage_io(**oracles.random_io_case(rng)))
    for _ in range(cases):
        result.checks += 1
        result.violations.extend(
            oracles.check_parallel_speedup(**oracles.random_speedup_case(rng)))
    for _ in range(max(2, cases // 4)):
        demands = [rng.randrange(1, 10_000_000)
                   for _ in range(rng.randrange(2, 12))]
        low = rng.randrange(1, 5)
        result.checks += 1
        result.violations.extend(oracles.check_engine_core_monotonicity(
            demands, low, low + rng.randrange(1, 5)))
    return result


def _check_branch_identity(smoke: bool) -> CheckResult:
    from repro.verify.branch import check_branch_identity

    result = CheckResult("branch-identity")
    violations, boots, checks = check_branch_identity(smoke=smoke)
    result.violations.extend(violations)
    result.boots += boots
    result.checks += checks
    return result


def _check_fleet_identity(smoke: bool) -> CheckResult:
    from repro.verify.fleet import check_fleet_identity

    result = CheckResult("fleet-identity")
    violations, boots, checks = check_fleet_identity(smoke=smoke)
    result.violations.extend(violations)
    result.boots += boots
    result.checks += checks
    return result


def _check_generation_identity(smoke: bool) -> CheckResult:
    from repro.verify.generations import check_generation_identity

    result = CheckResult("generation-identity")
    violations, boots, checks = check_generation_identity(smoke=smoke)
    result.violations.extend(violations)
    result.boots += boots
    result.checks += checks
    return result


def _check_fleet_crash(smoke: bool) -> CheckResult:
    from repro.verify.fleet_crash import check_fleet_crash

    result = CheckResult("fleet-crash")
    violations, boots, checks = check_fleet_crash(smoke=smoke)
    result.violations.extend(violations)
    result.boots += boots
    result.checks += checks
    return result


def _check_predicted(scenarios: list[_Scenario], smoke: bool) -> CheckResult:
    """Closed-form predictor vs DES on every unperturbed scenario."""
    from repro.analysis.predict import SweepPredictor, predict

    result = CheckResult("predicted")
    core_grid = (1, 2, 4) if smoke else (1, 2, 3, 4, 6)
    for scenario in scenarios:
        if scenario.fault_preset is not None:
            continue  # the predictor models unperturbed boots only
        for cores in core_grid:
            result.boots += 1
            result.checks += 1
            try:
                result.violations.extend(oracles.check_prediction_matches_des(
                    scenario.workload_factory, scenario.bb, cores=cores))
            except Exception as exc:  # noqa: BLE001 - report, don't crash CI
                result.violations.append(
                    f"{scenario.label}/c{cores}: predictor raised {exc!r}")
    # The sweep cache must be invisible: SweepPredictor's fast path has
    # to reproduce direct predict() bit for bit across the feature axes
    # it treats as prefix-only shifts.
    sweep = SweepPredictor(opensource_tv_workload)
    for feature in ("preparser", "deferred_meminit", "deferred_journal",
                    "defer_startup_tasks", "deferred_executor"):
        for base in (BBConfig.none(), BBConfig.full()):
            bb = base.with_feature(feature, not getattr(base, feature))
            cached = sweep.predict(bb, cores=2)
            direct = predict(opensource_tv_workload(), bb, cores=2)
            result.checks += 1
            if (cached.boot_complete_ns != direct.boot_complete_ns
                    or cached.unit_ready_ns != direct.unit_ready_ns):
                result.violations.append(
                    f"sweep-cache/{feature}: cached prediction "
                    f"{cached.boot_complete_ns} ns != direct "
                    f"{direct.boot_complete_ns} ns")
    return result


def _check_laws(seed: int, graphs: int) -> CheckResult:
    result = CheckResult("cross-cutting-laws")
    rng = random.Random(seed ^ 0x1A35)
    for _ in range(graphs):
        params = GeneratorParams(seed=rng.getrandbits(16),
                                 services=rng.randrange(8, 18))
        factory = lambda params=params: generate_workload(params)
        result.checks += 1
        result.boots += 2
        result.violations.extend(
            oracles.check_bb_not_slower(factory, InvariantMonitor))
    for _ in range(max(2, graphs // 2)):
        params = GeneratorParams(seed=rng.getrandbits(16),
                                 services=rng.randrange(8, 18))
        factory = lambda params=params: generate_workload(params)
        low = rng.randrange(1, 4)
        result.checks += 1
        result.boots += 2
        result.violations.extend(oracles.check_boot_core_monotonicity(
            factory, low, low + rng.randrange(1, 5)))
    return result


# ------------------------------------------------------------- entry point

def run_verification(smoke: bool = False, seed: int = 0,
                     only: str | None = None) -> VerificationReport:
    """Run the full verification harness and return its report.

    Args:
        smoke: CI-sized subset — still > 50 boots, but seconds not
            minutes.
        seed: Master seed for perturbation tie-breaks, oracle case
            generation and law workload graphs.  The same seed always
            reproduces the same harness run.
        only: Run just the named group (e.g. ``"fleet-crash"``).
            Unknown names raise :class:`ValueError` listing the
            available groups.
    """
    perturbations = 5 if smoke else 12
    oracle_cases = 25 if smoke else 120
    law_graphs = 8 if smoke else 24
    scenarios = _scenarios(smoke)

    report = VerificationReport(seed=seed, smoke=smoke)
    groups: list[tuple[str, Callable[[], CheckResult]]] = [
        ("invariant-monitor", lambda: _check_monitored_boots(scenarios)),
        ("schedule-perturbation",
         lambda: _check_perturbation(scenarios, seed, perturbations)),
        ("analytic-oracles",
         lambda: _check_analytic_oracles(seed, oracle_cases)),
        ("predicted", lambda: _check_predicted(scenarios, smoke)),
        ("cross-cutting-laws", lambda: _check_laws(seed, law_graphs)),
        ("branch-identity", lambda: _check_branch_identity(smoke)),
        ("fleet-identity", lambda: _check_fleet_identity(smoke)),
        ("generation-identity",
         lambda: _check_generation_identity(smoke)),
        ("fleet-crash", lambda: _check_fleet_crash(smoke)),
    ]
    if only is not None:
        names = [name for name, _ in groups]
        if only not in names:
            raise ValueError(f"unknown verification group {only!r}; "
                             f"choose from {', '.join(names)}")
        groups = [(name, thunk) for name, thunk in groups if name == only]
    for _, group in groups:
        started = time.perf_counter()
        result = group()
        result.duration_s = time.perf_counter() - started
        report.results.append(result)
    return report
