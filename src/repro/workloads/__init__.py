"""Workload definitions: the service sets the boot simulations run.

* :mod:`repro.workloads.base` — the :class:`Workload` bundle consumed by
  :class:`~repro.core.bb.BootSimulation`,
* :mod:`repro.workloads.tizen_tv` — the evaluation workload: a synthetic
  Tizen-TV service set calibrated to the paper's UE48H6200 measurements
  (136 open-source services, Fig. 2 statistics, the seven-member BB
  Group), plus the ~250-service commercialization fork,
* :mod:`repro.workloads.generator` — parameterized random service-graph
  generator for property tests and scaling studies,
* :mod:`repro.workloads.camera` / :mod:`repro.workloads.phone` — the
  NX300-like and phone-like porting targets (§4).
"""

from repro.workloads.appliance import appliance_workload
from repro.workloads.base import Workload
from repro.workloads.camera import camera_workload
from repro.workloads.generator import GeneratorParams, generate_workload
from repro.workloads.phone import phone_workload
from repro.workloads.tizen_tv import (commercial_tv_workload,
                                      opensource_tv_workload,
                                      perturbed_tv_workload)
from repro.workloads.wearable import wearable_workload

#: The named workload registry shared by every surface that resolves a
#: workload by name (CLI flags, fleet wire specs, campaign matrices).
WORKLOAD_FACTORIES = {
    "tv": opensource_tv_workload,
    "tv-commercial": commercial_tv_workload,
    "camera": camera_workload,
    "phone": phone_workload,
    "wearable": wearable_workload,
    "appliance": appliance_workload,
}

__all__ = [
    "WORKLOAD_FACTORIES",
    "GeneratorParams",
    "Workload",
    "appliance_workload",
    "camera_workload",
    "commercial_tv_workload",
    "generate_workload",
    "opensource_tv_workload",
    "perturbed_tv_workload",
    "phone_workload",
    "wearable_workload",
]
