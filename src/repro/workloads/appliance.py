"""A home-appliance workload (§4: BB ships on "other home appliances
(air conditioners, refrigerators, and robotic vacuum cleaners, since
2015)").

Modeled on a smart refrigerator with a door display.  Boot completion:
the control loop regulates the compressor and the door panel responds.
"""

from __future__ import annotations

import random

from repro.hw.memory import DRAMModel
from repro.hw.peripherals import Peripheral, PeripheralClass
from repro.hw.platform import HardwarePlatform
from repro.hw.storage import StorageDevice
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.quantities import GiB, KiB, MiB, msec
from repro.workloads.base import Workload

APPLIANCE_COMPLETION_UNITS = ("control-loop.service", "door-panel.service")


def appliance_platform() -> HardwarePlatform:
    """Refrigerator controller: dual-core, 512 MiB, small slow flash."""
    peripherals = {
        "compressor": Peripheral("compressor", PeripheralClass.PLATFORM,
                                 hw_init_ns=msec(80), driver="compressor_drv"),
        "door-display": Peripheral("door-display", PeripheralClass.DISPLAY,
                                   hw_init_ns=msec(40), driver="panel_drv"),
        "temp-sensors": Peripheral("temp-sensors", PeripheralClass.INPUT,
                                   hw_init_ns=msec(20), driver="sensor_drv"),
        "wifi": Peripheral("wifi", PeripheralClass.CONNECTIVITY,
                           hw_init_ns=msec(55), driver="wifi_drv"),
    }
    return HardwarePlatform(
        name="smart-fridge",
        cpu_cores=2,
        dram=DRAMModel(size_bytes=MiB(512)),
        storage=StorageDevice("appliance-emmc", seq_read_bps=MiB(60),
                              rand_read_bps=MiB(15), capacity_bytes=GiB(4)),
        peripherals=peripherals,
    )


def build_appliance_registry(seed: int = 33, extra_services: int = 14) -> UnitRegistry:
    """A fridge-shaped unit set."""
    rng = random.Random(seed)
    registry = UnitRegistry()
    registry.add(Unit(name="multi-user.target",
                      requires=["control-loop.service", "door-panel.service"]))
    registry.add(Unit(name="conf.mount", service_type=ServiceType.ONESHOT,
                      provides_paths=["/conf"],
                      cost=SimCost(init_cpu_ns=msec(5), exec_bytes=KiB(8))))
    registry.add(Unit(name="ipc.service", service_type=ServiceType.NOTIFY,
                      requires=["conf.mount"], after=["conf.mount"],
                      cost=SimCost(init_cpu_ns=msec(50), exec_bytes=KiB(200),
                                   rcu_syncs=1, processes=2)))
    registry.add(Unit(name="sensors.service", service_type=ServiceType.NOTIFY,
                      requires=["ipc.service"], after=["ipc.service"],
                      cost=SimCost(init_cpu_ns=msec(30), exec_bytes=KiB(120),
                                   rcu_syncs=1, hw_settle_ns=msec(20))))
    registry.add(Unit(name="control-loop.service",
                      service_type=ServiceType.NOTIFY,
                      description="Compressor regulation (boot completion)",
                      requires=["sensors.service", "ipc.service"],
                      after=["sensors.service", "ipc.service"],
                      cost=SimCost(init_cpu_ns=msec(90), exec_bytes=KiB(350),
                                   rcu_syncs=1, hw_settle_ns=msec(80))))
    registry.add(Unit(name="door-panel.service", service_type=ServiceType.NOTIFY,
                      requires=["ipc.service"], after=["ipc.service"],
                      cost=SimCost(init_cpu_ns=msec(140), exec_bytes=MiB(1),
                                   rcu_syncs=1, hw_settle_ns=msec(40))))
    for index in range(extra_services):
        registry.add(Unit(
            name=f"fridge-bg-{index:02d}.service",
            service_type=ServiceType.SIMPLE,
            wants=["ipc.service"], after=["ipc.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=msec(rng.randint(15, 60)),
                         exec_bytes=KiB(rng.randint(60, 350)),
                         rcu_syncs=rng.choice((0, 0, 1)))))
    return registry


def appliance_workload(seed: int = 33) -> Workload:
    """The smart-refrigerator workload."""
    return Workload(
        name="smart-fridge",
        platform_factory=appliance_platform,
        registry_factory=lambda: build_appliance_registry(seed),
        completion_units=APPLIANCE_COMPLETION_UNITS,
        preexisting_paths=frozenset({"/", "/run"}),
    )
