"""The workload bundle a boot simulation consumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WorkloadError
from repro.hw.platform import HardwarePlatform
from repro.initsys.registry import UnitRegistry
from repro.kernel.initcalls import InitcallRegistry
from repro.kernel.modules import KernelModule


@dataclass(slots=True)
class Workload:
    """Everything that varies between devices in a boot simulation.

    Attributes:
        name: Workload label.
        platform_factory: Builds a fresh hardware platform per run.
        registry_factory: Builds a fresh unit registry per run (fresh so
            runs never share mutable unit state).
        completion_units: The boot-completion definition (§2): for a TV,
            the broadcast app and the remote-input service.
        goal: Target unit whose transaction is the user-space boot.
        boot_modules_factory: External ``.ko`` modules the conventional
            boot loads before completion (On-demand Modularizer's prey).
        builtin_initcalls_factory: Initcalls compiled into the kernel in
            every configuration (boot-critical drivers); they run in the
            kernel stage regardless of BB.
        initcalls_factory: The On-demand Modularizer's deferred-builtin
            pool — these exist only when the Modularizer created them
            (otherwise the same drivers are the external boot modules).
        preexisting_paths: Simulated filesystem paths present at init
            start (kernel-mounted filesystems).
        groups: Unit name to developer-group label (Fig. 3 analysis).
        expected_bb_group: For validation/tests: the services the paper
            (or the workload author) expects the Isolator to find.
    """

    name: str
    platform_factory: Callable[[], HardwarePlatform]
    registry_factory: Callable[[], UnitRegistry]
    completion_units: tuple[str, ...]
    goal: str = "multi-user.target"
    boot_modules_factory: Callable[[], tuple[KernelModule, ...]] = tuple
    builtin_initcalls_factory: Callable[[], InitcallRegistry] = InitcallRegistry
    initcalls_factory: Callable[[], InitcallRegistry] = InitcallRegistry
    kernel_config_factory: "Callable[[], object] | None" = None
    preexisting_paths: frozenset[str] = frozenset()
    groups: dict[str, str] = field(default_factory=dict)
    expected_bb_group: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.completion_units:
            raise WorkloadError(f"workload {self.name!r} has no completion units")

    def fresh_registry(self) -> UnitRegistry:
        """A fresh registry instance (validated to contain the goal)."""
        registry = self.registry_factory()
        if self.goal not in registry:
            raise WorkloadError(
                f"workload {self.name!r}: goal {self.goal!r} not in registry")
        for unit in self.completion_units:
            if unit not in registry:
                raise WorkloadError(
                    f"workload {self.name!r}: completion unit {unit!r} missing")
        return registry
