"""An NX300-like Tizen camera workload (§2.1 / §4 porting claim).

Boot completion for a camera: "lenses and sensors are ready to capture the
scene and the display is showing what the lenses are seeing" (§2).
"""

from __future__ import annotations

import random

from repro.hw.presets import nx300
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.quantities import KiB, MiB, msec
from repro.workloads.base import Workload

CAMERA_COMPLETION_UNITS = ("capture.service",)


def build_camera_registry(seed: int = 7, extra_services: int = 24) -> UnitRegistry:
    """A camera-shaped unit set: capture chain + background daemons."""
    rng = random.Random(seed)
    registry = UnitRegistry()
    registry.add(Unit(name="multi-user.target", requires=["capture.service"]))
    registry.add(Unit(name="var.mount", service_type=ServiceType.ONESHOT,
                      provides_paths=["/var"],
                      cost=SimCost(init_cpu_ns=msec(5), exec_bytes=KiB(16))))
    registry.add(Unit(name="dbus.service", service_type=ServiceType.NOTIFY,
                      requires=["var.mount"], after=["var.mount"],
                      cost=SimCost(init_cpu_ns=msec(80), exec_bytes=KiB(300),
                                   rcu_syncs=2, processes=3)))
    registry.add(Unit(name="lens.service", service_type=ServiceType.NOTIFY,
                      requires=["dbus.service"], after=["dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(60), exec_bytes=KiB(220),
                                   rcu_syncs=2, hw_settle_ns=msec(120))))
    registry.add(Unit(name="sensor.service", service_type=ServiceType.NOTIFY,
                      requires=["dbus.service"], after=["dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(70), exec_bytes=KiB(260),
                                   rcu_syncs=2, hw_settle_ns=msec(80))))
    registry.add(Unit(name="display.service", service_type=ServiceType.NOTIFY,
                      requires=["dbus.service"], after=["dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(55), exec_bytes=KiB(240),
                                   rcu_syncs=1, hw_settle_ns=msec(40))))
    registry.add(Unit(name="capture.service", service_type=ServiceType.NOTIFY,
                      description="The camera application (boot completion)",
                      requires=["lens.service", "sensor.service",
                                "display.service"],
                      after=["lens.service", "sensor.service", "display.service"],
                      cost=SimCost(init_cpu_ns=msec(220), exec_bytes=MiB(2),
                                   rcu_syncs=2, processes=2)))
    for index in range(extra_services):
        registry.add(Unit(
            name=f"camera-bg-{index:02d}.service",
            service_type=ServiceType.SIMPLE,
            wants=["dbus.service"], after=["dbus.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=msec(rng.randint(20, 80)),
                         exec_bytes=KiB(rng.randint(100, 600)),
                         rcu_syncs=rng.choice((0, 1)))))
    return registry


def camera_workload(seed: int = 7) -> Workload:
    """The NX300-like camera workload."""
    return Workload(
        name="nx300-camera",
        platform_factory=nx300,
        registry_factory=lambda: build_camera_registry(seed),
        completion_units=CAMERA_COMPLETION_UNITS,
        preexisting_paths=frozenset({"/", "/run"}),
    )
