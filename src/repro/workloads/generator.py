"""Parameterized random service-graph generator.

Produces arbitrary-size workloads with a TV-like shape (a critical chain
plus layered daemons) for property-based tests and scaling studies: vary
the service count, dependency density, or cost distribution and measure
how each init scheme responds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.presets import ue48h6200
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.quantities import KiB, msec
from repro.workloads.base import Workload


@dataclass(frozen=True, slots=True)
class GeneratorParams:
    """Shape of a generated workload.

    Attributes:
        seed: RNG seed (generation is deterministic given the params).
        services: Total generated services (besides target + chain).
        chain_length: Length of the critical Requires chain ending at the
            completion service.
        want_density: Probability a generated service wants an earlier one.
        order_density: Probability of an extra After edge to an earlier
            service.
        mean_cpu_ms: Mean service initialization CPU.
        mean_exec_kib: Mean binary size.
        rcu_sync_mean: Mean synchronize_rcu calls per service.
    """

    seed: int = 1
    services: int = 50
    chain_length: int = 5
    want_density: float = 0.3
    order_density: float = 0.15
    mean_cpu_ms: float = 50.0
    mean_exec_kib: int = 300
    rcu_sync_mean: float = 1.0

    def __post_init__(self) -> None:
        if self.services < 0 or self.chain_length < 1:
            raise WorkloadError("invalid generator sizes")
        if not 0.0 <= self.want_density <= 1.0:
            raise WorkloadError("want_density must be a probability")
        if not 0.0 <= self.order_density <= 1.0:
            raise WorkloadError("order_density must be a probability")


def generate_registry(params: GeneratorParams) -> UnitRegistry:
    """Generate a unit registry with the given shape."""
    rng = random.Random(params.seed)
    registry = UnitRegistry()
    chain_names = [f"chain-{i:02d}.service" for i in range(params.chain_length)]
    registry.add(Unit(name="multi-user.target", requires=[chain_names[-1]]))

    def cost() -> SimCost:
        cpu = max(1.0, rng.expovariate(1.0 / params.mean_cpu_ms))
        exec_kib = max(16, round(rng.gauss(params.mean_exec_kib,
                                           params.mean_exec_kib / 3)))
        syncs = max(0, round(rng.gauss(params.rcu_sync_mean, 0.7)))
        return SimCost(init_cpu_ns=msec(cpu), exec_bytes=KiB(exec_kib),
                       rcu_syncs=syncs)

    previous = None
    for name in chain_names:
        registry.add(Unit(name=name, service_type=ServiceType.NOTIFY,
                          requires=[previous] if previous else [],
                          after=[previous] if previous else [],
                          cost=cost()))
        previous = name

    earlier: list[str] = list(chain_names)
    for index in range(params.services):
        name = f"gen-{index:03d}.service"
        wants = []
        after = []
        if earlier and rng.random() < params.want_density:
            wants.append(rng.choice(earlier))
        if earlier and rng.random() < params.order_density:
            after.append(rng.choice(earlier))
        registry.add(Unit(name=name,
                          service_type=rng.choice((ServiceType.SIMPLE,
                                                   ServiceType.NOTIFY,
                                                   ServiceType.ONESHOT)),
                          wants=wants, after=after,
                          wanted_by=["multi-user.target"],
                          cost=cost()))
        earlier.append(name)
    return registry


def generate_workload(params: GeneratorParams = GeneratorParams()) -> Workload:
    """A complete workload around :func:`generate_registry`."""
    completion = (f"chain-{params.chain_length - 1:02d}.service",)
    return Workload(
        name=f"generated-{params.seed}-{params.services}",
        platform_factory=ue48h6200,
        registry_factory=lambda: generate_registry(params),
        completion_units=completion,
        preexisting_paths=frozenset({"/", "/run"}),
    )
