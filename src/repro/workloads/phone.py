"""A phone-like workload (Samsung Z1/Z3, §4 porting claim).

Boot completion for a phone: "the user can make a phone call" (§2) — the
telephony stack plus the home screen's input handling.
"""

from __future__ import annotations

import random

from repro.hw.presets import galaxy_s6_like
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.quantities import KiB, MiB, msec
from repro.workloads.base import Workload

PHONE_COMPLETION_UNITS = ("telephony.service", "home-screen.service")


def build_phone_registry(seed: int = 11, extra_services: int = 60) -> UnitRegistry:
    """A phone-shaped unit set: telephony chain + a big app tail."""
    rng = random.Random(seed)
    registry = UnitRegistry()
    registry.add(Unit(name="multi-user.target",
                      requires=["telephony.service", "home-screen.service"]))
    registry.add(Unit(name="data.mount", service_type=ServiceType.ONESHOT,
                      provides_paths=["/data"],
                      cost=SimCost(init_cpu_ns=msec(8), exec_bytes=KiB(16))))
    registry.add(Unit(name="dbus.service", service_type=ServiceType.NOTIFY,
                      requires=["data.mount"], after=["data.mount"],
                      cost=SimCost(init_cpu_ns=msec(100), exec_bytes=KiB(350),
                                   rcu_syncs=2, processes=3)))
    registry.add(Unit(name="modem.service", service_type=ServiceType.NOTIFY,
                      requires=["dbus.service"], after=["dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(150), exec_bytes=KiB(500),
                                   rcu_syncs=3, hw_settle_ns=msec(350))))
    registry.add(Unit(name="telephony.service", service_type=ServiceType.NOTIFY,
                      requires=["modem.service"], after=["modem.service"],
                      cost=SimCost(init_cpu_ns=msec(180), exec_bytes=KiB(700),
                                   rcu_syncs=2, processes=2)))
    registry.add(Unit(name="display.service", service_type=ServiceType.NOTIFY,
                      requires=["dbus.service"], after=["dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(90), exec_bytes=KiB(400),
                                   rcu_syncs=1, hw_settle_ns=msec(50))))
    registry.add(Unit(name="home-screen.service", service_type=ServiceType.NOTIFY,
                      requires=["display.service", "dbus.service"],
                      after=["display.service", "dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(420), exec_bytes=MiB(4),
                                   rcu_syncs=2, processes=2)))
    for index in range(extra_services):
        registry.add(Unit(
            name=f"phone-app-{index:02d}.service",
            service_type=ServiceType.SIMPLE,
            wants=["dbus.service"], after=["dbus.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=msec(rng.randint(25, 110)),
                         exec_bytes=KiB(rng.randint(200, 1500)),
                         rcu_syncs=rng.choice((0, 0, 1, 2)))))
    return registry


def phone_workload(seed: int = 11) -> Workload:
    """The phone workload on Galaxy-S6-like hardware."""
    return Workload(
        name="tizen-phone",
        platform_factory=galaxy_s6_like,
        registry_factory=lambda: build_phone_registry(seed),
        completion_units=PHONE_COMPLETION_UNITS,
        preexisting_paths=frozenset({"/", "/run"}),
    )
