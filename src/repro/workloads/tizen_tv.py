"""The evaluation workload: a synthetic Tizen-TV service set.

The paper's Figure 2 graph is only described statistically (136 services
in the open-source Tizen TV OS, roughly doubling during commercialization;
a service averages about three processes; strong/weak/ordering edge mix),
and its per-service costs are proprietary.  This module generates a
deterministic service set with the same structure:

* the **BB-critical chain** — exactly the seven services the paper lists
  in the 2015 TV's BB Group: ``var.mount``, ``dbus.socket`` (the "socket"
  entry), ``dbus.service``, ``tuner.service``, ``hdmi.service``,
  ``demux.service``, ``fasttv.service`` — wired so the strong ``Requires``
  closure of the boot-completion definition (``fasttv.service``) is that
  set and nothing else,
* platform infrastructure and middleware daemons that want D-Bus,
* the **abusive orderings** of §4.2: vendor services that declared
  ``Before=`` on booting-critical units "so that their services may be
  launched as soon as possible to make them appear more optimized"
  (about a dozen on ``var.mount`` in the final release),
* a long tail of pre-loaded applications,
* 180 external kernel modules for the no-BB kmod worker, mirrored by
  deferrable built-in initcalls for the On-demand Modularizer.

Costs are calibrated (see ``TvWorkloadParams``) so the no-BB cold boot on
the UE48H6200 preset lands near the paper's 8.1 s and the full-BB boot
near 3.5 s, with per-feature contributions in the neighbourhood of
Fig. 6's attribution.  Tests pin the structural facts exactly and the
timings within tolerances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hw.presets import ue48h6200
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.kernel.initcalls import Initcall, InitcallLevel, InitcallRegistry
from repro.kernel.modules import KernelModule
from repro.quantities import KiB, MiB, msec, usec
from repro.workloads.base import Workload

#: The seven BB-Group members of the 2015 Samsung Smart TV (§3.3).
PAPER_BB_GROUP = frozenset({
    "var.mount", "dbus.socket", "dbus.service", "tuner.service",
    "hdmi.service", "demux.service", "fasttv.service",
})

#: Boot completion for a TV: broadcast playing and remote responding.
TV_COMPLETION_UNITS = ("fasttv.service",)


@dataclass(frozen=True, slots=True)
class TvWorkloadParams:
    """Calibration knobs for the synthetic TV service set.

    Defaults reproduce the paper's UE48H6200 numbers; the commercialization
    fork and scaling studies override the structural counts.
    """

    seed: int = 2016
    infra_services: int = 8
    middleware_services: int = 24
    app_services: int = 68
    noise_before_var: int = 12  # the §4.2 "about a dozen"
    noise_before_dbus: int = 8
    noise_before_fasttv: int = 6
    boot_module_count: int = 150
    rcu_sync_scale: float = 2.45
    app_cost_scale: float = 1.0


def _chain_units() -> list[Unit]:
    """The BB-critical chain with its calibrated costs."""
    return [
        Unit(name="var.mount", service_type=ServiceType.ONESHOT,
             description="Mount the /var directory",
             provides_paths=["/var"],
             cost=SimCost(init_cpu_ns=msec(6), exec_bytes=KiB(16))),
        Unit(name="dbus.socket", service_type=ServiceType.ONESHOT,
             description="D-Bus activation socket",
             provides_paths=["/run/dbus/system_bus_socket"],
             cost=SimCost(init_cpu_ns=msec(1), exec_bytes=KiB(4))),
        Unit(name="dbus.service", service_type=ServiceType.NOTIFY,
             description="D-Bus system message bus (standard Tizen IPC)",
             requires=["var.mount", "dbus.socket"],
             after=["var.mount", "dbus.socket"],
             provides_paths=["/run/dbus"],
             cost=SimCost(init_cpu_ns=msec(170), exec_bytes=KiB(380),
                          rcu_syncs=2, processes=3)),
        Unit(name="tuner.service", service_type=ServiceType.NOTIFY,
             description="Broadcast tuner control",
             requires=["dbus.service"], after=["dbus.service"],
             waits_for_paths=["/dev/tuner_drv"],
             cost=SimCost(init_cpu_ns=msec(240), exec_bytes=KiB(500),
                          rcu_syncs=3, hw_settle_ns=msec(450))),
        Unit(name="demux.service", service_type=ServiceType.NOTIFY,
             description="Transport-stream demultiplexer",
             requires=["dbus.service"], after=["dbus.service"],
             waits_for_paths=["/dev/demux_drv"],
             cost=SimCost(init_cpu_ns=msec(170), exec_bytes=KiB(300),
                          rcu_syncs=2, hw_settle_ns=msec(120))),
        Unit(name="hdmi.service", service_type=ServiceType.NOTIFY,
             description="HDMI input management",
             requires=["dbus.service"], after=["dbus.service"],
             waits_for_paths=["/dev/hdmi_drv"],
             cost=SimCost(init_cpu_ns=msec(140), exec_bytes=KiB(250),
                          rcu_syncs=2, hw_settle_ns=msec(160))),
        Unit(name="fasttv.service", service_type=ServiceType.NOTIFY,
             description="The broadcast TV application (boot completion)",
             requires=["dbus.service", "tuner.service", "demux.service",
                       "hdmi.service"],
             after=["dbus.service", "tuner.service", "demux.service",
                    "hdmi.service"],
             waits_for_paths=["/dev/av_drv"],
             cost=SimCost(init_cpu_ns=msec(1620), exec_bytes=MiB(10),
                          rcu_syncs=3, hw_settle_ns=msec(180), processes=3)),
        Unit(name="remote-input.service", service_type=ServiceType.SIMPLE,
             description="Remote-controller input events",
             wants=["dbus.service"], after=["dbus.service"],
             cost=SimCost(init_cpu_ns=msec(20), exec_bytes=KiB(80))),
    ]


_INFRA_NAMES = ("logger", "settings", "power-manager", "device-manager",
                "window-manager", "resource-manager", "network-manager",
                "media-server", "sensor-hub", "security-manager",
                "account-daemon", "pkg-manager")


def build_tv_registry(params: TvWorkloadParams = TvWorkloadParams()) -> UnitRegistry:
    """Generate the full TV unit set for the given parameters."""
    rng = random.Random(params.seed)
    registry = UnitRegistry()
    registry.add(Unit(name="multi-user.target",
                      requires=["fasttv.service"],
                      wants=["remote-input.service"]))
    for unit in _chain_units():
        registry.add(unit)
    registry.add(Unit(name="opt.mount", service_type=ServiceType.ONESHOT,
                      provides_paths=["/opt"],
                      cost=SimCost(init_cpu_ns=msec(4), exec_bytes=KiB(16)),
                      wanted_by=["multi-user.target"]))
    registry.add(Unit(name="log.socket", service_type=ServiceType.ONESHOT,
                      provides_paths=["/run/log.socket"],
                      cost=SimCost(init_cpu_ns=msec(1), exec_bytes=KiB(4)),
                      wanted_by=["multi-user.target"]))

    def jitter(base_ms: float, spread: float = 0.35) -> int:
        return msec(base_ms * (1.0 + spread * (2 * rng.random() - 1.0)))

    def rcu(mean: float) -> int:
        lam = mean * params.rcu_sync_scale
        # Small deterministic integer draw around the mean.
        return max(0, round(lam + (rng.random() - 0.5)))

    # Platform infrastructure: notify daemons wanting D-Bus.
    for index in range(params.infra_services):
        base = _INFRA_NAMES[index % len(_INFRA_NAMES)]
        generation = index // len(_INFRA_NAMES)
        name = (f"{base}.service" if generation == 0
                else f"{base}-{generation}.service")
        registry.add(Unit(
            name=name, service_type=ServiceType.NOTIFY,
            wants=["dbus.service"], after=["dbus.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=jitter(95), exec_bytes=KiB(rng.randint(200, 400)),
                         rcu_syncs=rcu(1.4), processes=rng.choice((1, 2, 3)))))

    # Middleware daemons.
    for index in range(params.middleware_services):
        registry.add(Unit(
            name=f"middleware-{index:02d}.service",
            service_type=rng.choice((ServiceType.SIMPLE, ServiceType.NOTIFY)),
            wants=["dbus.service"], after=["dbus.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=jitter(64), exec_bytes=KiB(rng.randint(190, 580)),
                         rcu_syncs=rcu(1.1), processes=rng.choice((1, 1, 2)))))

    # The abusive early birds of §4.2: ordering themselves before
    # booting-critical units to "appear more optimized".
    for index in range(params.noise_before_var):
        registry.add(Unit(
            name=f"vendor-early-{index:02d}.service",
            service_type=ServiceType.ONESHOT,
            before=["var.mount"], wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=jitter(75), exec_bytes=KiB(rng.randint(150, 350)),
                         rcu_syncs=rcu(0.6))))
    for index in range(params.noise_before_dbus):
        registry.add(Unit(
            name=f"vendor-eager-{index:02d}.service",
            service_type=ServiceType.ONESHOT,
            before=["demux.service", "hdmi.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=jitter(85), exec_bytes=KiB(rng.randint(170, 380)),
                         rcu_syncs=rcu(0.6))))
    for index in range(params.noise_before_fasttv):
        registry.add(Unit(
            name=f"vendor-pushy-{index:02d}.service",
            service_type=ServiceType.ONESHOT,
            before=["fasttv.service"], wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=jitter(95), exec_bytes=KiB(rng.randint(180, 420)),
                         rcu_syncs=rcu(0.8))))

    # Pre-loaded applications and assorted daemons.
    for index in range(params.app_services):
        registry.add(Unit(
            name=f"app-{index:02d}.service", service_type=ServiceType.SIMPLE,
            wants=["dbus.service"], after=["dbus.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=jitter(45 * params.app_cost_scale),
                         exec_bytes=KiB(rng.randint(200, 830)),
                         rcu_syncs=rcu(0.7))))
    return registry


#: Broadcast-path drivers and their position in the kmod load list; the
#: chain services wait on these device nodes (see WaitsForPaths above).
NAMED_DRIVER_POSITIONS = (("tuner_drv", 58), ("demux_drv", 40),
                          ("hdmi_drv", 45), ("av_drv", 35))


def build_boot_modules(params: TvWorkloadParams = TvWorkloadParams()) -> tuple[KernelModule, ...]:
    """The external ``.ko`` set the conventional boot loads (§2.4: 408
    modules ship; this is the boot-required subset).

    The broadcast-path drivers sit at fixed positions in the load order,
    so in the conventional boot their device nodes appear only once the
    kmod worker has worked through the list up to them.
    """
    rng = random.Random(params.seed + 1)
    modules = []
    named = dict(NAMED_DRIVER_POSITIONS)
    positions = {index: name for name, index in NAMED_DRIVER_POSITIONS}
    for index in range(params.boot_module_count):
        if index in positions:
            name = positions[index]
        else:
            name = f"drv_{index:03d}"
        modules.append(KernelModule(
            name=name,
            size_bytes=KiB(rng.randint(40, 140)),
            link_cpu_ns=usec(rng.randint(500, 1200)),
            boot_required=True))
    missing = [name for name, index in named.items()
               if index >= params.boot_module_count]
    for name in missing:  # tiny module lists still carry the named drivers
        modules.append(KernelModule(name=name, size_bytes=KiB(80),
                                    link_cpu_ns=usec(800), boot_required=True))
    return tuple(modules)


def build_deferred_initcalls(params: TvWorkloadParams = TvWorkloadParams()) -> InitcallRegistry:
    """The same drivers as deferrable built-ins (On-demand Modularizer).

    Includes the named peripherals post-boot applications demand-load in
    the §4.3 experiment (``usb_drv``, ``wifi_drv``, ``bt_drv``).
    """
    rng = random.Random(params.seed + 2)
    registry = InitcallRegistry()
    for name, settle_ms in (("usb_drv", 40), ("wifi_drv", 55), ("bt_drv", 30),
                            ("eth_drv", 35)):
        registry.register(Initcall(name, InitcallLevel.DEVICE,
                                   cpu_ns=usec(900), hw_settle_ns=msec(settle_ms),
                                   deferrable=True))
    for name, _ in NAMED_DRIVER_POSITIONS:
        registry.register(Initcall(name, InitcallLevel.DEVICE,
                                   cpu_ns=usec(700), deferrable=True))
    for index in range(params.boot_module_count):
        name = f"drv_{index:03d}"
        if name not in {n for n, _ in NAMED_DRIVER_POSITIONS}:
            registry.register(Initcall(name, InitcallLevel.DEVICE,
                                       cpu_ns=usec(rng.randint(200, 500)),
                                       deferrable=True))
    return registry


def build_builtin_initcalls() -> InitcallRegistry:
    """Boot-critical drivers compiled into the TV kernel in every
    configuration: the broadcast path's bus, the panel controller, the IR
    receiver, power domains, and the eMMC host.  Their 30 ms runs inside
    kernel stage (a) under BB and no-BB alike.
    """
    registry = InitcallRegistry()
    registry.register(Initcall("pm_domains", InitcallLevel.CORE, cpu_ns=msec(4)))
    registry.register(Initcall("emmc_host", InitcallLevel.POSTCORE, cpu_ns=msec(8)))
    registry.register(Initcall("av_bus", InitcallLevel.SUBSYS, cpu_ns=msec(7)))
    registry.register(Initcall("panel_ctrl", InitcallLevel.DEVICE, cpu_ns=msec(8)))
    registry.register(Initcall("ir_recv", InitcallLevel.DEVICE, cpu_ns=msec(3)))
    return registry


def build_tv_kernel_config() -> "KernelConfig":
    """The TV's §2.4-optimized kernel build.

    The 30 ms of boot-critical built-in initcalls above are carved out of
    the commercial baseline's core cost so kernel stage (a) still lands on
    the paper's 698 ms (403 ms under BB).
    """
    from repro.kernel.config import KernelConfig

    return KernelConfig(base_cost_ns=msec(47))


def _tv_groups(registry: UnitRegistry) -> dict[str, str]:
    """Developer-team group labels (for the Fig. 3 analysis)."""
    groups: dict[str, str] = {}
    for name in registry.names:
        if name in PAPER_BB_GROUP or name == "remote-input.service":
            groups[name] = "broadcast"
        elif name.startswith(("middleware-", "logger", "settings", "power-",
                              "device-", "window-", "resource-", "network-",
                              "media-", "sensor-", "security-", "account-",
                              "pkg-")):
            groups[name] = "platform"
        elif name.startswith("vendor-"):
            groups[name] = "vendor"
        elif name.startswith("app-"):
            groups[name] = "apps"
        else:
            groups[name] = "base"
    return groups


def opensource_tv_workload(params: TvWorkloadParams = TvWorkloadParams()) -> Workload:
    """The open-source Tizen TV set: 136 services + the boot target."""
    registry_probe = build_tv_registry(params)
    return Workload(
        name="tizen-tv-opensource",
        platform_factory=ue48h6200,
        registry_factory=lambda: build_tv_registry(params),
        completion_units=TV_COMPLETION_UNITS,
        boot_modules_factory=lambda: build_boot_modules(params),
        builtin_initcalls_factory=build_builtin_initcalls,
        initcalls_factory=lambda: build_deferred_initcalls(params),
        kernel_config_factory=build_tv_kernel_config,
        preexisting_paths=frozenset({"/", "/run"}),
        groups=_tv_groups(registry_probe),
        expected_bb_group=PAPER_BB_GROUP,
    )


def perturbed_tv_workload(instance: int, spread: float = 0.3,
                          perturb_chain: bool = False,
                          params: TvWorkloadParams = TvWorkloadParams()) -> Workload:
    """One boot *instance* of the TV with run-to-run latency variation.

    §2.5.3: "the initialization time of a service may be not constant,
    especially if it depends on network responses or user input", so "the
    complicated dependency structure with non-determinism and dynamicity
    result in a boot time that varies among instances".  This factory
    perturbs service initialization CPU and hardware-settle times by a
    deterministic per-instance factor in ``[1-spread, 1+spread]``.

    By default the BB-critical chain itself is left unperturbed: §3.3's
    consistency claim is about boot time staying stable under the
    "on-going development of *other* OS services and applications" — the
    few booting-critical services are the part administrators control.
    Set ``perturb_chain`` to jitter them too.
    """
    workload = opensource_tv_workload(params)

    def perturbed_registry() -> UnitRegistry:
        rng = random.Random(0xB00 + instance)
        registry = build_tv_registry(params)
        for name in registry.names:
            unit = registry.get(name)
            factor = 1.0 + spread * (2 * rng.random() - 1.0)
            if name in PAPER_BB_GROUP and not perturb_chain:
                continue  # rng.random() already consumed: instances align
            registry.replace(unit.with_cost(
                init_cpu_ns=round(unit.cost.init_cpu_ns * factor),
                hw_settle_ns=round(unit.cost.hw_settle_ns * factor)))
        return registry

    workload.name = f"tizen-tv-instance-{instance}"
    workload.registry_factory = perturbed_registry
    return workload


def commercial_tv_workload(seed: int = 2016) -> Workload:
    """The commercialization fork: the service count roughly doubles
    "within a few months" (§2.5) — more middleware, apps, and vendor
    services, same BB-critical chain."""
    params = TvWorkloadParams(
        seed=seed,
        infra_services=12,
        middleware_services=78,
        app_services=140,
        noise_before_var=14,
        noise_before_dbus=12,
        noise_before_fasttv=10,
        boot_module_count=240,
    )
    workload = opensource_tv_workload(params)
    workload.name = "tizen-tv-commercial"
    return workload
