"""A Gear-like wearable workload (§4: BB ships on "wearable devices
(Gear series, since 2014)").

Boot completion for a watch: the watch face is displayed and touch/bezel
input responds.
"""

from __future__ import annotations

import random

from repro.hw.memory import DRAMModel
from repro.hw.peripherals import Peripheral, PeripheralClass
from repro.hw.platform import HardwarePlatform
from repro.hw.storage import StorageDevice
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.quantities import GiB, KiB, MiB, msec
from repro.workloads.base import Workload

WEARABLE_COMPLETION_UNITS = ("watchface.service",)


def wearable_platform() -> HardwarePlatform:
    """Gear-like hardware: dual-core, 768 MiB DRAM, 4 GiB eMMC."""
    peripherals = {
        "display-panel": Peripheral("display-panel", PeripheralClass.DISPLAY,
                                    hw_init_ns=msec(30), driver="panel_drv"),
        "touch": Peripheral("touch", PeripheralClass.INPUT, hw_init_ns=msec(10),
                            driver="touch_drv"),
        "heart-rate": Peripheral("heart-rate", PeripheralClass.CONNECTIVITY,
                                 hw_init_ns=msec(45), driver="hr_drv"),
        "bluetooth": Peripheral("bluetooth", PeripheralClass.CONNECTIVITY,
                                hw_init_ns=msec(30), driver="bt_drv"),
    }
    return HardwarePlatform(
        name="gear-like",
        cpu_cores=2,
        dram=DRAMModel(size_bytes=MiB(768)),
        storage=StorageDevice("wearable-emmc", seq_read_bps=MiB(80),
                              rand_read_bps=MiB(22), capacity_bytes=GiB(4)),
        peripherals=peripherals,
    )


def build_wearable_registry(seed: int = 21, extra_services: int = 18) -> UnitRegistry:
    """A watch-shaped unit set."""
    rng = random.Random(seed)
    registry = UnitRegistry()
    registry.add(Unit(name="multi-user.target", requires=["watchface.service"]))
    registry.add(Unit(name="data.mount", service_type=ServiceType.ONESHOT,
                      provides_paths=["/data"],
                      cost=SimCost(init_cpu_ns=msec(4), exec_bytes=KiB(8))))
    registry.add(Unit(name="dbus.service", service_type=ServiceType.NOTIFY,
                      requires=["data.mount"], after=["data.mount"],
                      cost=SimCost(init_cpu_ns=msec(60), exec_bytes=KiB(250),
                                   rcu_syncs=2, processes=2)))
    registry.add(Unit(name="display.service", service_type=ServiceType.NOTIFY,
                      requires=["dbus.service"], after=["dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(45), exec_bytes=KiB(200),
                                   rcu_syncs=1, hw_settle_ns=msec(30))))
    registry.add(Unit(name="input.service", service_type=ServiceType.SIMPLE,
                      requires=["dbus.service"], after=["dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(15), exec_bytes=KiB(90))))
    registry.add(Unit(name="watchface.service", service_type=ServiceType.NOTIFY,
                      description="Watch face app (boot completion)",
                      requires=["display.service", "input.service",
                                "dbus.service"],
                      after=["display.service", "input.service", "dbus.service"],
                      cost=SimCost(init_cpu_ns=msec(180), exec_bytes=MiB(1),
                                   rcu_syncs=1, processes=2)))
    for index in range(extra_services):
        registry.add(Unit(
            name=f"watch-bg-{index:02d}.service",
            service_type=ServiceType.SIMPLE,
            wants=["dbus.service"], after=["dbus.service"],
            wanted_by=["multi-user.target"],
            cost=SimCost(init_cpu_ns=msec(rng.randint(15, 70)),
                         exec_bytes=KiB(rng.randint(80, 400)),
                         rcu_syncs=rng.choice((0, 1, 1)))))
    return registry


def wearable_workload(seed: int = 21) -> Workload:
    """The Gear-like wearable workload."""
    return Workload(
        name="gear-wearable",
        platform_factory=wearable_platform,
        registry_factory=lambda: build_wearable_registry(seed),
        completion_units=WEARABLE_COMPLETION_UNITS,
        preexisting_paths=frozenset({"/", "/run"}),
    )
