"""Tests for the blame / critical-chain attribution tooling."""

import pytest

from repro.analysis.blame import (blame, critical_chain, render_blame,
                                  render_critical_chain)
from repro.core import BBConfig, BootSimulation
from repro.errors import AnalysisError
from repro.workloads import opensource_tv_workload


@pytest.fixture(scope="module")
def bb_run():
    simulation = BootSimulation(opensource_tv_workload(), BBConfig.full())
    report = simulation.run()
    return simulation, report


def test_blame_sorted_longest_first(bb_run):
    _, report = bb_run
    entries = blame(report)
    durations = [e.duration_ns for e in entries]
    assert durations == sorted(durations, reverse=True)
    assert entries[0].unit == "fasttv.service"  # the heavyweight app


def test_blame_top_limits(bb_run):
    _, report = bb_run
    assert len(blame(report, top=5)) == 5


def test_blame_render(bb_run):
    _, report = bb_run
    text = render_blame(report, top=3)
    assert "fasttv.service" in text
    assert "ms" in text


def test_critical_chain_is_the_bb_chain(bb_run):
    """Under full BB the measured gating chain is the paper's critical
    path: mount -> dbus -> broadcast driver service -> fasttv."""
    simulation, report = bb_run
    links = critical_chain(report, simulation.manager.registry,
                           "fasttv.service")
    names = [link.unit for link in links]
    assert names[-1] == "fasttv.service"
    assert "dbus.service" in names
    assert names[0] in ("var.mount", "dbus.socket")
    # Under isolation, no out-of-group service gates the chain.
    assert all(name in report.bb_group for name in names)


def test_chain_times_are_monotone(bb_run):
    simulation, report = bb_run
    links = critical_chain(report, simulation.manager.registry,
                           "fasttv.service")
    for earlier, later in zip(links, links[1:]):
        assert earlier.ready_ns <= later.started_ns + 1


def test_conventional_chain_includes_the_abusers():
    """Without isolation the vendor services really do gate the chain."""
    simulation = BootSimulation(opensource_tv_workload(), BBConfig.none())
    report = simulation.run()
    links = critical_chain(report, simulation.manager.registry,
                           "fasttv.service")
    names = {link.unit for link in links}
    assert any(name.startswith("vendor-") for name in names)


def test_default_completion_is_latest_ready(bb_run):
    simulation, report = bb_run
    links = critical_chain(report, simulation.manager.registry)
    assert links[-1].unit == max(report.unit_ready_ns,
                                 key=lambda u: report.unit_ready_ns[u])


def test_unknown_completion_rejected(bb_run):
    simulation, report = bb_run
    with pytest.raises(AnalysisError):
        critical_chain(report, simulation.manager.registry, "ghost.service")


def test_render_critical_chain(bb_run):
    simulation, report = bb_run
    text = render_critical_chain(report, simulation.manager.registry,
                                 "fasttv.service")
    assert "@" in text
    assert "fasttv.service" in text
