"""Tests for the Chrome trace-event export."""

import json

import pytest

from repro.analysis.chrome_trace import tracer_to_chrome_json, tracer_to_events
from repro.core import BBConfig, BootSimulation
from repro.workloads import camera_workload


@pytest.fixture(scope="module")
def simulation():
    sim = BootSimulation(camera_workload(), BBConfig.full())
    sim.run()
    return sim


def test_document_parses_and_has_events(simulation):
    doc = json.loads(tracer_to_chrome_json(simulation.sim.tracer))
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) > 20


def test_spans_become_complete_events(simulation):
    events = tracer_to_events(simulation.sim.tracer)
    service_events = [e for e in events
                      if e.get("ph") == "X" and e.get("cat") == "service"]
    assert any(e["name"] == "capture.service" for e in service_events)
    for event in service_events:
        assert event["dur"] >= 0
        assert event["ts"] >= 0


def test_boot_complete_is_a_global_instant(simulation):
    events = tracer_to_events(simulation.sim.tracer)
    markers = [e for e in events if e.get("ph") == "i"
               and e["name"] == "boot.complete"]
    assert len(markers) == 1
    assert markers[0]["s"] == "g"


def test_categories_get_named_tracks(simulation):
    events = tracer_to_events(simulation.sim.tracer)
    names = {e["args"]["name"] for e in events if e.get("ph") == "M"
             and e["name"] == "thread_name"}
    assert {"service", "kernel", "boot-stage"} <= names


def test_timestamps_are_microseconds(simulation):
    events = tracer_to_events(simulation.sim.tracer)
    report_ns = simulation.manager.boot_complete_ns
    marker = next(e for e in events if e.get("ph") == "i"
                  and e["name"] == "boot.complete")
    assert marker["ts"] == pytest.approx(report_ns / 1_000)
