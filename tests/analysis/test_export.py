"""Tests for the JSON report export."""

import json

import pytest

from repro.analysis.export import report_to_dict, report_to_json
from repro.core import BBConfig, BootSimulation
from repro.workloads import camera_workload


@pytest.fixture(scope="module")
def report():
    return BootSimulation(camera_workload(), BBConfig.full()).run()


def test_dict_covers_the_report(report):
    data = report_to_dict(report)
    assert data["boot_complete_ns"] == report.boot_complete_ns
    assert data["stages_ns"]["kernel"] == report.stages.kernel_ns
    assert data["bb_group"] == sorted(report.bb_group)
    assert data["unit_ready_ns"]["capture.service"] == \
        report.ready_ns("capture.service")


def test_json_round_trips(report):
    data = json.loads(report_to_json(report))
    assert data["workload"] == "nx300-camera"
    assert isinstance(data["rcu"]["sync_count"], int)


def test_json_is_deterministic(report):
    assert report_to_json(report) == report_to_json(report)


def test_cli_json_flag(capsys):
    from repro.cli import main

    code = main(["boot", "--workload", "camera", "--json"])
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["workload"] == "nx300-camera"
    assert data["boot_complete_ns"] > 0
