"""Tests for boot metrics and table formatting."""

import pytest

from repro.analysis.metrics import BootReport, StageBreakdown, speedup
from repro.analysis.report import ComparisonTable, format_table
from repro.errors import AnalysisError
from repro.kernel.sequence import KernelBootTimings
from repro.quantities import msec, sec


def make_report(**overrides):
    defaults = dict(
        workload="test", features=[],
        stages=StageBreakdown(kernel_ns=msec(698), init_init_ns=msec(195),
                              services_ns=msec(7207)),
        boot_complete_ns=msec(8100), all_done_ns=msec(9000),
        kernel_timings=KernelBootTimings(bootloader_ns=msec(135),
                                         meminit_ns=msec(370), core_ns=msec(83),
                                         initcalls_ns=0, rootfs_ns=msec(110)),
        unit_ready_ns={"fasttv.service": msec(8100)},
    )
    defaults.update(overrides)
    return BootReport(**defaults)


def test_stage_total():
    stages = StageBreakdown(kernel_ns=1, init_init_ns=2, services_ns=3)
    assert stages.total_ns == 6


def test_boot_complete_ms():
    assert make_report().boot_complete_ms == pytest.approx(8100.0)


def test_ready_ns_lookup_and_error():
    report = make_report()
    assert report.ready_ns("fasttv.service") == msec(8100)
    with pytest.raises(AnalysisError, match="never became ready"):
        report.ready_ns("ghost.service")


def test_speedup_matches_paper_quote():
    """8.1 s -> 3.5 s is a ~57 % reduction."""
    assert speedup(sec(8.1), sec(3.5)) == pytest.approx(0.568, abs=0.001)


def test_speedup_requires_positive_baseline():
    with pytest.raises(AnalysisError):
        speedup(0, 100)


def test_format_table_aligns_columns():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4
    assert "long-name" in lines[3]


def test_comparison_table_render_and_saving():
    table = ComparisonTable(title="Fig6")
    table.add("kernel init", msec(698), msec(403))
    table.add("init init", msec(195), msec(71))
    assert table.saving_ns("kernel init") == msec(295)
    text = table.render()
    assert "Fig6" in text
    assert "698.0 ms" in text
    assert "403.0 ms" in text
    assert "295.0 ms" in text


def test_comparison_table_negative_saving_rendered():
    table = ComparisonTable(title="t")
    table.add("regression", msec(100), msec(130))
    assert "-30.0 ms" in table.render()


def test_comparison_table_missing_row():
    with pytest.raises(KeyError):
        ComparisonTable(title="t").saving_ns("nope")
