"""Tests for the closed-form boot-time predictor."""

import pytest

from repro.analysis.predict import (
    BootPrediction,
    PREDICTION_TOLERANCE,
    compute_wall_ns,
    predict,
    predict_job,
    registry_text_stats,
)
from repro.core.bb import BootSimulation
from repro.core.config import BBConfig
from repro.errors import AnalysisError
from repro.faults.plan import FaultPlan
from repro.graph.critical_path import critical_path
from repro.initsys.units import SimCost, Unit
from repro.quantities import msec
from repro.runner.jobs import SimJob
from repro.sim.cpu import DEFAULT_QUANTUM_NS, DEFAULT_SWITCH_COST_NS
from repro.workloads import (
    camera_workload,
    opensource_tv_workload,
    wearable_workload,
)


def test_compute_wall_matches_cpu_slicing():
    q, s = DEFAULT_QUANTUM_NS, DEFAULT_SWITCH_COST_NS
    assert compute_wall_ns(0) == 0
    assert compute_wall_ns(1) == 1 + s
    assert compute_wall_ns(q) == q + s
    assert compute_wall_ns(q + 1) == q + 1 + 2 * s
    assert compute_wall_ns(10 * q) == 10 * q + 10 * s


@pytest.mark.parametrize("bb", [BBConfig.none(), BBConfig.full()],
                         ids=["none", "full"])
@pytest.mark.parametrize("cores", [1, 2, 4])
def test_predictor_matches_des_on_tv(bb, cores):
    """The core differential oracle, inline: predictor vs simulator."""
    des = BootSimulation(opensource_tv_workload(), bb, cores=cores).run()
    pred = predict(opensource_tv_workload(), bb, cores=cores)
    assert pred.boot_complete_ns == des.boot_complete_ns
    # Per-unit times agree for every unit the prediction covers.
    for name, ready_ns in pred.unit_ready_ns.items():
        assert des.unit_ready_ns.get(name) == ready_ns


def test_predictor_matches_des_on_camera():
    des = BootSimulation(camera_workload(), BBConfig.full(), cores=2).run()
    pred = predict(camera_workload(), BBConfig.full(), cores=2)
    assert pred.boot_complete_ns == des.boot_complete_ns


def test_stage_breakdown_matches_des():
    des = BootSimulation(wearable_workload(), BBConfig.none(), cores=2).run()
    pred = predict(wearable_workload(), BBConfig.none(), cores=2)
    assert pred.kernel_ns == des.stages.kernel_ns
    assert pred.init_init_ns == des.stages.init_init_ns


def test_bb_group_reported_when_isolation_enabled():
    pred = predict(opensource_tv_workload(), BBConfig.full(), cores=4)
    assert pred.bb_group
    assert not predict(opensource_tv_workload(), BBConfig.none(),
                       cores=4).bb_group


def test_more_cores_never_slower_on_presets():
    times = [predict(camera_workload(), BBConfig.none(),
                     cores=c).boot_complete_ns for c in (1, 2, 4)]
    assert times[0] >= times[1] >= times[2] * (1 - PREDICTION_TOLERANCE)


def test_critical_path_lower_bounds_services_phase():
    wl = opensource_tv_workload()
    pred = predict(wl, BBConfig.none(), cores=64)
    path = critical_path(wl.fresh_registry(), wl.completion_units)
    assert path.length_ns <= pred.services_ns


def test_text_stats_cache_gives_identical_prediction():
    wl = opensource_tv_workload()
    baseline = predict(wl, BBConfig.none(), cores=4)
    registry = opensource_tv_workload().fresh_registry()
    from repro.initsys.preparser import PreParser

    pp = PreParser()
    stats = registry_text_stats(registry, pp.parse_base_ns,
                                pp.parse_per_byte_ns)
    cached = predict(opensource_tv_workload(), BBConfig.none(), cores=4,
                     text_stats=stats)
    assert cached.boot_complete_ns == baseline.boot_complete_ns


def test_predict_job_round_trip():
    job = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(), cores=4)
    pred = predict_job(job)
    assert isinstance(pred, BootPrediction)
    assert pred.boot_complete_ns == predict(
        opensource_tv_workload(), BBConfig.full(), cores=4).boot_complete_ns


def test_fault_plans_rejected():
    job = SimJob.boot(opensource_tv_workload, bb=BBConfig.none(), cores=4)
    faulted = job.replace(fault_plan=FaultPlan()) if hasattr(job, "replace") \
        else None
    if faulted is None:
        import dataclasses
        faulted = dataclasses.replace(job, fault_plan=FaultPlan())
    with pytest.raises(AnalysisError, match="unperturbed"):
        predict_job(faulted)


def test_flaky_units_rejected():
    wl = opensource_tv_workload()
    registry = wl.fresh_registry()
    registry.add(Unit(name="flaky.service", failures_before_success=1,
                      wanted_by=["multi-user.target"],
                      cost=SimCost(init_cpu_ns=msec(1), exec_bytes=0)))
    import dataclasses
    rigged = dataclasses.replace(wl, registry_factory=lambda: registry)
    with pytest.raises(AnalysisError, match="failures_before_success"):
        predict(rigged, BBConfig.none(), cores=4)


def test_unknown_completion_unit_rejected():
    import dataclasses
    wl = dataclasses.replace(opensource_tv_workload(),
                             completion_units=("ghost.service",))
    with pytest.raises(AnalysisError):
        predict(wl, BBConfig.none(), cores=4)


# --------------------------------------------------------------------------
# SweepPredictor: the design-space cache must be invisible.


class TestSweepPredictor:
    def _sweep(self):
        from repro.analysis.predict import SweepPredictor

        return SweepPredictor(opensource_tv_workload)

    def test_fast_hits_are_bit_identical_to_direct_predict(self):
        from repro.analysis.predict import PREFIX_ONLY_FEATURES

        sweep = self._sweep()
        for base in (BBConfig.none(), BBConfig.full()):
            for feature in PREFIX_ONLY_FEATURES:
                bb = base.with_feature(feature,
                                       not getattr(base, feature))
                via_cache = sweep.predict(bb, cores=2)
                direct = predict(opensource_tv_workload(), bb, cores=2)
                assert via_cache.boot_complete_ns == direct.boot_complete_ns
                assert via_cache.unit_ready_ns == direct.unit_ready_ns
                assert via_cache.unit_started_ns == direct.unit_started_ns

    def test_prefix_only_flips_reuse_the_machine_solution(self):
        from repro.analysis.predict import PREFIX_ONLY_FEATURES

        sweep = self._sweep()
        sweep.predict(BBConfig.none(), cores=4)
        runs_after_reference = sweep.machine_runs
        for feature in PREFIX_ONLY_FEATURES:
            sweep.predict(BBConfig.none().with_feature(feature, True),
                          cores=4)
        assert sweep.machine_runs == runs_after_reference
        assert sweep.fast_hits == len(PREFIX_ONLY_FEATURES)

    def test_service_phase_flips_pay_a_machine_run(self):
        sweep = self._sweep()
        sweep.predict(BBConfig.none(), cores=4)
        before = sweep.machine_runs
        sweep.predict(BBConfig.none().with_feature("rcu_booster", True),
                      cores=4)
        assert sweep.machine_runs == before + 1

    def test_distinct_core_counts_are_distinct_solutions(self):
        sweep = self._sweep()
        two = sweep.predict(BBConfig.full(), cores=2)
        four = sweep.predict(BBConfig.full(), cores=4)
        assert sweep.machine_runs == 2
        assert two.boot_complete_ns >= four.boot_complete_ns


def test_deep_chain_predicts_without_recursion_error():
    """Acceptance: a 5,000-unit strong Requires/After chain must solve
    analytically without touching the interpreter recursion limit (the
    same graph shape that used to overflow critical_path)."""
    from repro.workloads import GeneratorParams, generate_workload

    params = GeneratorParams(seed=7, services=0, chain_length=5_000,
                             mean_cpu_ms=1.0, rcu_sync_mean=0.0)
    workload = generate_workload(params)
    path = critical_path(workload.fresh_registry(),
                         workload.completion_units,
                         storage=workload.platform_factory().storage)
    assert len(path.units) == 5_000
    prediction = predict(generate_workload(params), BBConfig.none(),
                         cores=4)
    assert prediction.boot_complete_ns >= path.length_ns
    assert len(prediction.unit_ready_ns) >= 5_000
