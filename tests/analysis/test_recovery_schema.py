"""Schema enforcement for the recovery section of exported boot reports."""

import pytest

from repro.errors import SchemaError
from repro.analysis.schema import (RECOVERY_KEYS, RECOVERY_OUTCOMES,
                                   RECOVERY_RUNG_KEYS, validate_recovery_dict,
                                   validate_report_dict)


def valid_recovery():
    return {
        "policy": "default",
        "seed": 1,
        "converged": True,
        "rung": "restart",
        "rungs": [
            {"rung": "as-configured", "outcome": "failed", "boot_ns": 100,
             "failed_units": ["var.mount"]},
            {"rung": "restart", "outcome": "completed", "boot_ns": 200,
             "failed_units": []},
        ],
        "total_recovery_ns": 300,
        "restart_history": {"var.mount": {"attempts": 5,
                                          "delays_ns": [10, 20, 40]}},
        "masked_units": [],
        "snapshot": {"intact": False, "verify_ns": 50, "restore_ns": 0},
    }


def test_valid_recovery_passes():
    validate_recovery_dict(valid_recovery())


def test_key_sets_are_pinned():
    assert set(valid_recovery()) == set(RECOVERY_KEYS)
    assert set(valid_recovery()["rungs"][0]) == set(RECOVERY_RUNG_KEYS)
    assert "completed" in RECOVERY_OUTCOMES and "skipped" in RECOVERY_OUTCOMES


@pytest.mark.parametrize("mutate, message", [
    (lambda d: d.pop("rung"), "missing"),
    (lambda d: d.update(extra=1), "unexpected"),
    (lambda d: d.update(policy=""), "policy"),
    (lambda d: d.update(seed="one"), "seed"),
    (lambda d: d.update(converged="yes"), "converged"),
    (lambda d: d.update(rung=None), "rung"),  # converged => rung non-null
    (lambda d: d.update(rungs=[]), "rungs"),
    (lambda d: d["rungs"][0].update(outcome="exploded"), "outcome"),
    (lambda d: d["rungs"][0].pop("boot_ns"), "expected keys"),
    (lambda d: d["rungs"][0].update(stray=1), "expected keys"),
    (lambda d: d.update(total_recovery_ns=-1), "total_recovery_ns"),
    (lambda d: d["restart_history"].update(bad={"attempts": 0,
                                                "delays_ns": []}),
     "attempts"),
    (lambda d: d["restart_history"].update(bad={"attempts": 1,
                                                "delays_ns": [-5]}),
     "delays_ns"),
    (lambda d: d.update(masked_units=[1]), "masked_units"),
    (lambda d: d.update(snapshot={"intact": True}), "snapshot"),
])
def test_invalid_recovery_rejected(mutate, message):
    document = valid_recovery()
    mutate(document)
    with pytest.raises(SchemaError, match=message):
        validate_recovery_dict(document)


def test_unconverged_recovery_allows_null_rung():
    document = valid_recovery()
    document["converged"] = False
    document["rung"] = None
    document["rungs"][-1]["outcome"] = "failed"
    validate_recovery_dict(document)


def test_null_snapshot_allowed():
    document = valid_recovery()
    document["snapshot"] = None
    validate_recovery_dict(document)


# ----------------------------------------------------- report integration

def healthy_report_dict():
    from repro.analysis.export import report_to_dict
    from repro.core import BBConfig, BootSimulation
    from repro.workloads import camera_workload

    report = BootSimulation(camera_workload(), BBConfig.none()).run()
    return report_to_dict(report)


def test_report_with_recovery_section_validates():
    document = healthy_report_dict()
    assert document["recovery"] is None  # unsupervised boot
    validate_report_dict(document)
    document["recovery"] = valid_recovery()
    validate_report_dict(document)


def test_report_with_invalid_recovery_rejected():
    document = healthy_report_dict()
    document["recovery"] = {"policy": "p"}
    with pytest.raises(SchemaError):
        validate_report_dict(document)


def test_exporter_enforces_recovery_schema():
    """report_to_json refuses to serialize a report whose recovery
    section drifted from the schema."""
    from repro.analysis.export import report_to_json
    from repro.core import BBConfig, BootSimulation
    from repro.workloads import camera_workload

    report = BootSimulation(camera_workload(), BBConfig.none()).run()
    report.recovery = {"not": "a recovery section"}
    with pytest.raises(SchemaError):
        report_to_json(report)


def test_unit_attempts_validated():
    document = healthy_report_dict()
    document["unit_attempts"] = {"a.service": 0}
    with pytest.raises(SchemaError, match="unit_attempts"):
        validate_report_dict(document)
