"""Schema validation of the exported documents (Chrome trace, boot report)."""

import json

import pytest

from repro.analysis.chrome_trace import tracer_to_chrome_json, tracer_to_events
from repro.analysis.export import report_to_dict, report_to_json
from repro.analysis.schema import (REPORT_KEYS, validate_chrome_trace,
                                   validate_report_dict,
                                   validate_trace_events)
from repro.core import BBConfig, BootSimulation
from repro.errors import SchemaError
from repro.workloads.generator import GeneratorParams, generate_workload


@pytest.fixture(scope="module")
def boot():
    simulation = BootSimulation(
        generate_workload(GeneratorParams(seed=21, services=10)),
        BBConfig.full())
    report = simulation.run()
    return simulation, report


# ------------------------------------------------------------ chrome trace

def test_real_trace_export_validates(boot):
    simulation, _ = boot
    document = json.loads(tracer_to_chrome_json(simulation.sim.tracer))
    validate_chrome_trace(document)  # must not raise
    assert document["displayTimeUnit"] == "ms"


def test_trace_events_have_named_tracks(boot):
    simulation, _ = boot
    events = tracer_to_events(simulation.sim.tracer)
    named = {(e["pid"], e["tid"]) for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    used = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
    assert used <= named


def test_unknown_phase_rejected():
    events = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
               "args": {"name": "x"}},
              {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
               "args": {"name": "t"}},
              {"name": "bad", "ph": "Z", "pid": 1, "tid": 1, "ts": 0}]
    with pytest.raises(SchemaError, match="unknown phase"):
        validate_trace_events(events)


def test_negative_timestamp_rejected():
    events = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
               "args": {"name": "x"}},
              {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
               "args": {"name": "t"}},
              {"name": "span", "ph": "X", "pid": 1, "tid": 1,
               "ts": -1, "dur": 5}]
    with pytest.raises(SchemaError, match="ts"):
        validate_trace_events(events)


def test_complete_event_requires_duration():
    events = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
               "args": {"name": "x"}},
              {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
               "args": {"name": "t"}},
              {"name": "span", "ph": "X", "pid": 1, "tid": 1, "ts": 0}]
    with pytest.raises(SchemaError, match="dur"):
        validate_trace_events(events)


def test_event_on_unnamed_track_rejected():
    events = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
               "args": {"name": "x"}},
              {"name": "span", "ph": "X", "pid": 1, "tid": 42,
               "ts": 0, "dur": 1}]
    with pytest.raises(SchemaError, match="unnamed track"):
        validate_trace_events(events)


def test_missing_process_name_rejected():
    events = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
               "args": {"name": "t"}}]
    with pytest.raises(SchemaError, match="process_name"):
        validate_trace_events(events)


def test_trace_document_shape_rejected():
    with pytest.raises(SchemaError, match="traceEvents"):
        validate_chrome_trace({"displayTimeUnit": "ms"})
    with pytest.raises(SchemaError, match="displayTimeUnit"):
        validate_chrome_trace({"traceEvents": [], "displayTimeUnit": "s"})


# ------------------------------------------------------------- boot report

def test_real_report_export_validates(boot):
    _, report = boot
    document = json.loads(report_to_json(report))
    validate_report_dict(document)  # must not raise
    assert set(document) == REPORT_KEYS


def test_missing_key_rejected(boot):
    _, report = boot
    document = report_to_dict(report)
    del document["boot_complete_ns"]
    with pytest.raises(SchemaError, match="missing keys: boot_complete_ns"):
        validate_report_dict(document)


def test_extra_key_rejected(boot):
    """Exporter drift: a new field must be added to the schema too."""
    _, report = boot
    document = report_to_dict(report)
    document["surprise"] = 1
    with pytest.raises(SchemaError, match="unexpected keys: surprise"):
        validate_report_dict(document)


def test_negative_timestamp_in_report_rejected(boot):
    _, report = boot
    document = report_to_dict(report)
    document["boot_complete_ns"] = -5
    with pytest.raises(SchemaError, match="boot_complete_ns"):
        validate_report_dict(document)


def test_all_done_before_completion_rejected(boot):
    _, report = boot
    document = report_to_dict(report)
    document["all_done_ns"] = document["boot_complete_ns"] - 1
    with pytest.raises(SchemaError, match="all_done_ns"):
        validate_report_dict(document)


def test_ready_before_start_rejected(boot):
    _, report = boot
    document = report_to_dict(report)
    name = next(iter(document["unit_started_ns"]))
    document["unit_ready_ns"][name] = document["unit_started_ns"][name] - 1
    with pytest.raises(SchemaError, match="ready at"):
        validate_report_dict(document)


def test_boolean_is_not_an_integer(boot):
    """bool is an int subclass; the schema must not let True slip through."""
    _, report = boot
    document = report_to_dict(report)
    document["cpu_busy_ns"] = True
    with pytest.raises(SchemaError, match="cpu_busy_ns"):
        validate_report_dict(document)


def test_rcu_section_key_drift_rejected(boot):
    _, report = boot
    document = report_to_dict(report)
    document["rcu"] = {"sync_count": 1, "spin_ns": 2}  # wall_ns missing
    with pytest.raises(SchemaError, match="rcu"):
        validate_report_dict(document)


def test_non_string_failed_unit_reason_rejected(boot):
    _, report = boot
    document = report_to_dict(report)
    document["failed_units"] = {"x.service": 3}
    with pytest.raises(SchemaError, match="failed_units"):
        validate_report_dict(document)
