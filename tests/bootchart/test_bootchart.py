"""Tests for bootchart extraction and rendering."""

import pytest

from repro.bootchart import BootChart, ChartBar, render_ascii, render_svg
from repro.core import BBConfig, BootSimulation
from repro.errors import AnalysisError
from repro.quantities import msec
from repro.workloads import opensource_tv_workload


def make_chart():
    return BootChart([
        ChartBar("a.service", start_ns=0, ready_ns=msec(10), end_ns=msec(10)),
        ChartBar("b.service", start_ns=msec(5), ready_ns=msec(30), end_ns=msec(30)),
        ChartBar("c.service", start_ns=msec(20), ready_ns=msec(25), end_ns=msec(25)),
    ], boot_complete_ns=msec(30))


def test_bars_sorted_by_start():
    chart = make_chart()
    assert [b.name for b in chart.bars] == ["a.service", "b.service", "c.service"]


def test_span_covers_completion():
    assert make_chart().span_ns == msec(30)


def test_bar_lookup():
    chart = make_chart()
    assert chart.bar("b.service").start_ns == msec(5)
    with pytest.raises(AnalysisError):
        chart.bar("ghost.service")


def test_launched_before():
    chart = make_chart()
    assert chart.launched_before(msec(1)) == 1
    assert chart.launched_before(msec(6)) == 2
    assert chart.launched_before(msec(100)) == 3


def test_empty_chart_rejected():
    with pytest.raises(AnalysisError):
        BootChart([])


def test_from_report_covers_transaction():
    report = BootSimulation(opensource_tv_workload(), BBConfig.full()).run()
    chart = BootChart.from_report(report)
    assert chart.bar("fasttv.service").ready_ns == report.boot_complete_ns
    assert chart.launched_before(chart.span_ns) == len(chart.bars)
    assert len(chart.bars) > 100


def test_from_tracer_uses_service_spans():
    simulation = BootSimulation(opensource_tv_workload(), BBConfig.full())
    simulation.run()
    chart = BootChart.from_tracer(simulation.sim.tracer)
    assert chart.boot_complete_ns is not None
    assert any(b.name == "dbus.service" for b in chart.bars)


def test_ascii_render_shape():
    text = render_ascii(make_chart(), width=60)
    lines = text.splitlines()
    assert "#" in text
    assert "boot complete" in text
    assert len(lines) == 2 + 3  # header + marker + three bars
    assert lines[2].startswith("a.service")


def test_ascii_render_row_limit():
    text = render_ascii(make_chart(), max_rows=2)
    assert "1 more services" in text


def test_svg_render_is_wellformed():
    svg = render_svg(make_chart())
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert svg.count("<rect") == 3
    assert "boot complete" in svg
