"""Shared pytest configuration: the hypothesis profile.

One profile for every property-based test, registered here instead of
per-file so no module-import-order accident silently overrides another
file's settings:

* ``derandomize=True`` — CI runs are reproducible; a red build replays
  exactly.
* ``print_blob=True`` — failures print the ``@reproduce_failure`` blob,
  so the failing example can be pinned locally without rediscovery.
* ``deadline=None`` — simulated boots legitimately take hundreds of
  milliseconds of wall clock; hypothesis's per-example deadline would
  flake on CI load, not on bugs.

Individual tests lower ``max_examples`` with a ``@settings(...)``
decorator where an example is a whole boot.  Select an alternative
profile with ``HYPOTHESIS_PROFILE`` (e.g. ``explore`` re-randomizes for
local bug hunting).
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass
else:
    settings.register_profile("repro", deadline=None, max_examples=60,
                              derandomize=True, print_blob=True)
    settings.register_profile("explore", deadline=None, max_examples=200,
                              derandomize=False, print_blob=True)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
