"""End-to-end tests of BootSimulation — the paper's headline numbers."""

import pytest

from repro.analysis.metrics import speedup
from repro.core import BBConfig, BootSimulation
from repro.quantities import msec, sec
from repro.workloads import opensource_tv_workload
from repro.workloads.tizen_tv import PAPER_BB_GROUP


def run(bb, workload=None):
    return BootSimulation(workload or opensource_tv_workload(), bb).run()


class TestHeadlineNumbers:
    """§4.1: BB reduced booting latency by ~57%, from 8.1 s to 3.5 s."""

    def test_no_bb_boots_in_about_8_1_seconds(self):
        report = run(BBConfig.none())
        assert report.boot_complete_ns == pytest.approx(sec(8.1), rel=0.05)

    def test_full_bb_boots_in_about_3_5_seconds(self):
        report = run(BBConfig.full())
        assert report.boot_complete_ns == pytest.approx(sec(3.5), rel=0.05)

    def test_speedup_is_about_57_percent(self):
        baseline = run(BBConfig.none())
        improved = run(BBConfig.full())
        gain = speedup(baseline.boot_complete_ns, improved.boot_complete_ns)
        assert gain == pytest.approx(0.57, abs=0.03)


class TestStageBreakdown:
    """Fig. 6's three major steps."""

    def test_kernel_stage_698_to_403(self):
        assert run(BBConfig.none()).stages.kernel_ns == pytest.approx(msec(698),
                                                                      rel=0.02)
        assert run(BBConfig.full()).stages.kernel_ns == pytest.approx(msec(403),
                                                                      rel=0.02)

    def test_init_stage_195_to_71(self):
        assert run(BBConfig.none()).stages.init_init_ns == pytest.approx(
            msec(195), rel=0.02)
        assert run(BBConfig.full()).stages.init_init_ns == pytest.approx(
            msec(71), rel=0.02)

    def test_stages_sum_to_completion(self):
        report = run(BBConfig.full())
        assert report.stages.total_ns == report.boot_complete_ns


class TestReportContents:
    def test_bb_group_is_the_papers_seven(self):
        report = run(BBConfig.full())
        assert report.bb_group == PAPER_BB_GROUP

    def test_no_bb_reports_empty_group(self):
        assert run(BBConfig.none()).bb_group == frozenset()

    def test_features_recorded(self):
        report = run(BBConfig.none().with_feature("rcu_booster", True))
        assert report.features == ["rcu_booster"]

    def test_unit_timings_cover_the_transaction(self):
        report = run(BBConfig.full())
        assert "fasttv.service" in report.unit_ready_ns
        assert "dbus.service" in report.unit_ready_ns
        assert report.unit_started_ns["fasttv.service"] <= \
            report.unit_ready_ns["fasttv.service"]

    def test_isolation_drops_edges(self):
        report = run(BBConfig.full())
        assert report.ignored_edges > 0
        assert run(BBConfig.none()).ignored_edges == 0

    def test_deferred_work_recorded_and_completes(self):
        report = run(BBConfig.full())
        assert any("deferred" in name for name in report.deferred_task_names)
        assert report.all_done_ns >= report.boot_complete_ns

    def test_rcu_stats_differ_between_modes(self):
        conventional = run(BBConfig.none())
        boosted = run(BBConfig.full())
        assert conventional.rcu_spin_ns > 0
        assert boosted.rcu_spin_ns == 0
        assert boosted.rcu_wall_ns < conventional.rcu_wall_ns

    def test_completion_is_fasttv_readiness(self):
        report = run(BBConfig.full())
        assert report.boot_complete_ns == report.ready_ns("fasttv.service")


class TestDeterminism:
    def test_identical_runs_identical_reports(self):
        a = run(BBConfig.full())
        b = run(BBConfig.full())
        assert a.boot_complete_ns == b.boot_complete_ns
        assert a.unit_ready_ns == b.unit_ready_ns
        assert a.rcu_sync_count == b.rcu_sync_count


class TestFeatureMonotonicity:
    """Each feature, enabled on top of everything before it in the paper's
    deployment order, must not slow the boot down."""

    ORDER = ["deferred_meminit", "deferred_journal", "defer_startup_tasks",
             "rcu_booster", "deferred_executor", "preparser",
             "group_isolation", "group_priority_boost",
             "ondemand_modularizer"]

    def test_cumulative_deltas_non_negative(self):
        config = BBConfig.none()
        previous = run(config).boot_complete_ns
        for feature in self.ORDER:
            config = config.with_feature(feature, True)
            current = run(config).boot_complete_ns
            assert current <= previous + msec(20), (
                f"enabling {feature} slowed the boot: "
                f"{previous / 1e6:.1f} -> {current / 1e6:.1f} ms")
            previous = current


def test_run_is_single_shot():
    from repro.errors import SimulationError

    simulation = BootSimulation(opensource_tv_workload(), BBConfig.full())
    simulation.run()
    with pytest.raises(SimulationError, match="single-shot"):
        simulation.run()


def test_core_count_override():
    eight = BootSimulation(opensource_tv_workload(), BBConfig.full(), cores=8).run()
    four = BootSimulation(opensource_tv_workload(), BBConfig.full(), cores=4).run()
    one = BootSimulation(opensource_tv_workload(), BBConfig.full(), cores=1).run()
    assert eight.boot_complete_ns <= four.boot_complete_ns
    assert four.boot_complete_ns < one.boot_complete_ns
