"""Tests for the BB feature switchboard."""

import pytest

from repro.core.config import BBConfig


def test_none_has_no_features():
    assert BBConfig.none().enabled_features() == []


def test_full_has_every_feature():
    config = BBConfig.full()
    assert config.rcu_booster
    assert config.deferred_meminit
    assert config.group_isolation
    assert len(config.enabled_features()) == 10


def test_with_feature_round_trip():
    config = BBConfig.none().with_feature("rcu_booster", True)
    assert config.rcu_booster
    assert not config.preparser
    back = config.with_feature("rcu_booster", False)
    assert back == BBConfig.none()


def test_with_feature_unknown_rejected():
    with pytest.raises(AttributeError, match="unknown BB feature"):
        BBConfig.none().with_feature("warp_drive", True)


def test_config_is_immutable():
    config = BBConfig.none()
    with pytest.raises(Exception):
        config.rcu_booster = True
