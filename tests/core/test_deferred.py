"""Tests for post-boot application launches over deferred work (§4.3)."""

import pytest

from repro.core import ApplicationLaunch, BBConfig, BootSimulation
from repro.core.deferred import launch_sequence
from repro.errors import ConfigurationError
from repro.quantities import msec
from repro.workloads import opensource_tv_workload


def boot_then_launch(apps, bb=None):
    simulation = BootSimulation(opensource_tv_workload(),
                                bb or BBConfig.full())
    simulation.run()
    sim = simulation.sim
    bootup = simulation.booster.bootup_engine
    reports, runner = launch_sequence(sim, simulation.platform.storage,
                                      bootup, apps)
    sim.spawn(runner, name="app-launcher")
    sim.run()
    return reports


def test_app_without_deferred_needs_launches_fast():
    reports = boot_then_launch([ApplicationLaunch("browser")])
    assert len(reports) == 1
    assert reports[0].demand_loaded == []


def test_first_launch_pays_demand_load_second_does_not():
    """§4.3: 'once an application triggers a deferred task to start, the
    deferred task no longer incurs an additional delay'."""
    app = ApplicationLaunch("media-player", needed_drivers=("usb_drv",))
    reports = boot_then_launch([app, app])
    first, second = reports
    assert first.demand_loaded == ["usb_drv"]
    assert second.demand_loaded == []
    assert second.latency_ns < first.latency_ns


def test_deferred_overhead_is_bounded():
    """§4.3: overhead of deferring is < 15 ms on average for apps that
    depend on deferred tasks (excluding the device's own settle time,
    which the app would pay in any boot scheme)."""
    plain = boot_then_launch([ApplicationLaunch("app")])
    deferred = boot_then_launch([ApplicationLaunch("app",
                                                   needed_drivers=("bt_drv",))])
    overhead = deferred[0].latency_ns - plain[0].latency_ns
    # bt_drv: 30 ms hardware settle + on-demand machinery; the machinery
    # itself (overhead minus settle) stays under the paper's 15 ms bound.
    machinery = overhead - msec(30)
    assert machinery < msec(15)


def test_invalid_app_rejected():
    with pytest.raises(ConfigurationError):
        ApplicationLaunch("bad", exec_bytes=-1)


def test_launch_reports_accumulate_in_order():
    apps = [ApplicationLaunch(f"app{i}") for i in range(3)]
    reports = boot_then_launch(apps)
    assert [r.app for r in reports] == ["app0", "app1", "app2"]
