"""Tests for the three BB engines as components."""

import pytest

from repro.core import BBConfig, BootSimulation
from repro.core.bootup_engine import BootupEngine
from repro.core.core_engine import CoreEngine
from repro.core.service_engine import ServiceEngine
from repro.hw.presets import ue48h6200
from repro.kernel.initcalls import Initcall, InitcallLevel, InitcallRegistry
from repro.kernel.rcu import RCUMode
from repro.quantities import msec
from repro.sim import Simulator
from repro.workloads import opensource_tv_workload
from repro.workloads.tizen_tv import TV_COMPLETION_UNITS, build_tv_registry


def make_core_engine(bb, initcalls=None):
    sim = Simulator(cores=4)
    platform = ue48h6200().attach(sim)
    return sim, CoreEngine(platform, bb, initcalls=initcalls)


def drive_kernel(sim, core_engine):
    def boot():
        yield from core_engine.run_kernel(sim)

    sim.spawn(boot(), name="kernel")
    sim.run()


class TestCoreEngine:
    def test_initcalls_only_installed_with_ondemand(self):
        registry = InitcallRegistry()
        registry.register(Initcall("usb_drv", InitcallLevel.DEVICE,
                                   cpu_ns=msec(1), deferrable=True))
        _, without = make_core_engine(BBConfig.none(), initcalls=registry)
        assert len(without.initcalls) == 0
        registry2 = InitcallRegistry()
        registry2.register(Initcall("usb_drv", InitcallLevel.DEVICE,
                                    cpu_ns=msec(1), deferrable=True))
        _, with_od = make_core_engine(
            BBConfig.none().with_feature("ondemand_modularizer", True),
            initcalls=registry2)
        assert len(with_od.initcalls) == 1

    def test_deferred_kernel_flags_propagate(self):
        _, engine = make_core_engine(BBConfig.full())
        assert engine.sequence.meminit.deferred
        assert engine.sequence.rootfs.deferred_journal

    def test_demand_load_initcall_runs_once(self):
        registry = InitcallRegistry()
        registry.register(Initcall("usb_drv", InitcallLevel.DEVICE,
                                   cpu_ns=msec(2), deferrable=True))
        sim, engine = make_core_engine(
            BBConfig.none().with_feature("ondemand_modularizer", True),
            initcalls=registry)

        def scenario():
            yield from engine.run_kernel(sim)
            yield from engine.demand_load_initcall(sim, "usb_drv")

        sim.spawn(scenario(), name="s")
        sim.run()
        assert "usb_drv" in engine.initcalls.completed


class TestBootupEngine:
    def test_rcu_boost_window(self):
        """RCU Booster is enabled at init start and disabled at completion."""
        sim, core = make_core_engine(BBConfig.full())
        drive_kernel(sim, core)
        bootup = BootupEngine(BBConfig.full(), core)
        bootup.on_init_start(sim)
        assert core.rcu.mode is RCUMode.BOOSTED
        bootup.on_boot_complete(sim)
        assert core.rcu.mode is RCUMode.CONVENTIONAL
        assert bootup.boost_enabled_at_ns is not None
        assert bootup.boost_disabled_at_ns is not None

    def test_no_boost_without_the_feature(self):
        sim, core = make_core_engine(BBConfig.none())
        drive_kernel(sim, core)
        bootup = BootupEngine(BBConfig.none(), core)
        bootup.on_init_start(sim)
        assert core.rcu.mode is RCUMode.CONVENTIONAL

    def test_manager_flags_mirror_config(self):
        sim, core = make_core_engine(BBConfig.full())
        bootup = BootupEngine(BBConfig.full(), core)
        flags = bootup.manager_flags()
        assert flags == {"defer_startup_tasks": True, "defer_submodules": True,
                         "use_preparser": True, "ondemand_modules": True}

    def test_build_manager_config(self):
        sim, core = make_core_engine(BBConfig.none())
        bootup = BootupEngine(BBConfig.none(), core)
        config = bootup.build_manager_config("multi-user.target",
                                             ("fasttv.service",))
        assert config.goal == "multi-user.target"
        assert not config.use_preparser

    def test_completion_spawns_kernel_deferred_tasks(self):
        sim, core = make_core_engine(BBConfig.full())
        drive_kernel(sim, core)
        bootup = BootupEngine(BBConfig.full(), core)
        bootup.on_init_start(sim)
        bootup.on_boot_complete(sim)
        sim.run()
        assert core.sequence.meminit.remainder_done
        assert core.sequence.rootfs.journal_enabled


class TestServiceEngine:
    def test_hooks_gated_by_flags(self):
        registry = build_tv_registry()
        off = ServiceEngine(registry, TV_COMPLETION_UNITS, BBConfig.none())
        assert off.edge_filter is None
        assert off.priority_fn is None
        on = ServiceEngine(build_tv_registry(), TV_COMPLETION_UNITS,
                           BBConfig.full())
        assert on.edge_filter is not None
        assert on.priority_fn is not None

    def test_static_builds_applied_to_group(self):
        engine = ServiceEngine(build_tv_registry(), TV_COMPLETION_UNITS,
                               BBConfig.full())
        assert engine.registry.get("fasttv.service").static_build
        assert not engine.registry.get("app-00.service").static_build

    def test_priority_fn_boosts_group_members(self):
        engine = ServiceEngine(build_tv_registry(), TV_COMPLETION_UNITS,
                               BBConfig.full())
        fasttv = engine.registry.get("fasttv.service")
        app = engine.registry.get("app-00.service")
        assert engine.priority_fn(fasttv) < engine.priority_fn(app)

    def test_analyzer_runs_clean_on_tv_workload(self):
        engine = ServiceEngine(build_tv_registry(), TV_COMPLETION_UNITS,
                               BBConfig.none())
        report = engine.analyze()
        assert not report.has_errors

    def test_cache_covers_whole_registry(self):
        engine = ServiceEngine(build_tv_registry(), TV_COMPLETION_UNITS,
                               BBConfig.full())
        cache = engine.build_cache()
        assert cache.unit_count == len(engine.registry)
