"""Tests for the BB Group Isolator."""

from repro.core.isolator import BBGroupIsolator
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import EdgeKind, OrderingEdge
from repro.initsys.units import Unit
from repro.workloads.tizen_tv import (PAPER_BB_GROUP, TV_COMPLETION_UNITS,
                                      build_tv_registry)
from tests.fixtures import mini_tv_registry


def test_tv_workload_group_is_the_papers_seven():
    """§3.3: 'there were seven services (i.e., mount, socket, dbus, tuner,
    hdmi, demux, and fasttv) in the BB group.'"""
    registry = build_tv_registry()
    isolator = BBGroupIsolator(registry, TV_COMPLETION_UNITS)
    assert isolator.group == PAPER_BB_GROUP
    assert len(isolator.group) == 7


def test_group_is_requires_closure_only():
    """Wants and orderings declared by others never grow the group."""
    registry = mini_tv_registry()
    isolator = BBGroupIsolator(registry, ("fasttv.service",))
    # messenger/store are only wanted by the target: not in the group.
    assert "messenger.service" not in isolator.group
    assert "store.service" not in isolator.group
    assert "fasttv.service" in isolator.group
    assert "dbus.service" in isolator.group


def test_extra_members_are_added():
    registry = mini_tv_registry()
    isolator = BBGroupIsolator(registry, ("fasttv.service",),
                               extra_members=["messenger.service"])
    assert "messenger.service" in isolator.group


def test_nonexistent_extra_members_ignored():
    registry = mini_tv_registry()
    isolator = BBGroupIsolator(registry, ("fasttv.service",),
                               extra_members=["ghost.service"])
    assert "ghost.service" not in isolator.group


def test_edge_filter_drops_outside_in_edges_only():
    registry = build_tv_registry()
    isolator = BBGroupIsolator(registry, TV_COMPLETION_UNITS)

    outside_in = OrderingEdge("vendor-early-00.service", "var.mount",
                              EdgeKind.STRONG)
    inside_inside = OrderingEdge("dbus.service", "tuner.service",
                                 EdgeKind.STRONG)
    inside_out = OrderingEdge("dbus.service", "app-00.service", EdgeKind.STRONG)
    outside_outside = OrderingEdge("app-00.service", "app-01.service",
                                   EdgeKind.WEAK)

    assert not isolator.edge_filter(outside_in)
    assert isolator.edge_filter(inside_inside)
    assert isolator.edge_filter(inside_out)
    assert isolator.edge_filter(outside_outside)
    assert isolator.ignored_edge_count == 1


def test_contains_and_sorted_members():
    registry = build_tv_registry()
    isolator = BBGroupIsolator(registry, TV_COMPLETION_UNITS)
    assert "dbus.service" in isolator
    assert "app-00.service" not in isolator
    members = isolator.members_sorted()
    assert members == sorted(members)
    assert set(members) == PAPER_BB_GROUP
