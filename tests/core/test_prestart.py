"""Tests for the §5 pre-link / pre-fork / static-build models."""

import pytest

from repro.core.prestart import (PreforkModel, PrelinkModel,
                                 static_build_saving_ns)
from repro.errors import ConfigurationError
from repro.initsys.units import SimCost, Unit
from repro.quantities import msec, usec


def unit(name="u.service", link_us=900, static=False, procs=1, exec_kib=256):
    return Unit(name=name, static_build=static,
                cost=SimCost(dynamic_link_ns=usec(link_us), processes=procs,
                             exec_bytes=exec_kib * 1024))


class TestPrelink:
    def test_cold_link_saving(self):
        model = PrelinkModel(link_cost_factor=0.25)
        saving = model.launch_saving_ns(unit(link_us=1000),
                                        preceding_same_libs=False)
        assert saving == usec(750)

    def test_warm_libraries_save_nothing_extra(self):
        model = PrelinkModel()
        assert model.launch_saving_ns(unit(), preceding_same_libs=True) == 0

    def test_static_unit_saves_nothing(self):
        model = PrelinkModel()
        assert model.launch_saving_ns(unit(static=True),
                                      preceding_same_libs=False) == 0

    def test_security_flag(self):
        assert PrelinkModel().aslr_weakened

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            PrelinkModel(link_cost_factor=1.5)


class TestPrefork:
    def test_clone_is_cheaper_per_launch(self):
        model = PreforkModel()
        u = unit(procs=2)
        without = model.launch_cost_without_ns(u, exec_read_ns=msec(5))
        with_pool = model.launch_cost_with_ns(u)
        assert with_pool < without

    def test_template_prelaunch_carries_the_real_cost(self):
        model = PreforkModel()
        u = unit()
        prelaunch = model.template_prelaunch_ns(u, exec_read_ns=msec(5))
        assert prelaunch >= msec(5)

    def test_net_benefit_negative_for_small_early_group(self):
        """§5: pre-fork does not pay for the BB Group."""
        model = PreforkModel()
        group = [unit(name=f"g{i}.service") for i in range(7)]
        net = model.net_benefit_ns(group, lambda u: msec(5))
        assert net < 0

    def test_invalid_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            PreforkModel(pool_setup_ns=-1)


def test_static_build_saving_counts_dynamic_units_only():
    units = [unit(link_us=1000), unit(name="s.service", link_us=1000,
                                      static=True)]
    assert static_build_saving_ns(units) == usec(1000)
