"""Integration tests for the ablation studies."""

import pytest

from repro.experiments import ablations


@pytest.fixture(scope="module")
def result():
    return ablations.run()


def test_every_feature_matters_except_static_build(result):
    """Removing any feature (except the unquantified static build) from
    the full configuration costs boot time."""
    for feature, delta in result.leave_one_out_ms.items():
        if feature == "static_bb_group":
            continue
        assert delta > 0, f"removing {feature} should slow the boot"


def test_rcu_and_priorities_dominate(result):
    ordered = sorted(result.leave_one_out_ms.items(), key=lambda kv: -kv[1])
    top_two = {name for name, _ in ordered[:2]}
    assert top_two == {"rcu_booster", "group_priority_boost"}


def test_sequential_is_by_far_the_slowest_scheme(result):
    assert result.scheme_ms["sequential rcS"] > \
        2 * result.scheme_ms["out-of-order"]


def test_out_of_order_without_path_check_misboots(result):
    assert result.scheme_violations["out-of-order"] > 0
    assert result.scheme_violations["out-of-order + path-check"] == 0


def test_bb_scales_with_cores_no_bb_suffers_more_on_one_core(result):
    one_core_none, one_core_bb = result.core_scaling_ms[1]
    four_core_none, four_core_bb = result.core_scaling_ms[4]
    assert one_core_none > four_core_none
    assert one_core_bb > four_core_bb
    # BB's advantage exists at every core count.
    for cores, (none, bb) in result.core_scaling_ms.items():
        assert bb < none


def test_commercialization_hurts_no_bb_much_more_than_bb(result):
    open_none, open_bb = result.growth_ms["open-source (136 services)"]
    comm_none, comm_bb = result.growth_ms["commercial fork (>250 services)"]
    # No-BB boot roughly doubles; BB stays within ~15%.
    assert comm_none > 1.5 * open_none
    assert comm_bb < 1.15 * open_bb


def test_render(result):
    text = ablations.render(result)
    assert "Ablation 1" in text
    assert "Ablation 4" in text
