"""Tests for the analytically pre-filtered design-space experiment."""

import pytest

from repro.experiments import design_space


@pytest.fixture(scope="module")
def result():
    return design_space.run(smoke=True, exhaustive=True)


class TestDesignSpace:
    def test_smoke_matrix_shape(self, result):
        assert result.cells == 64
        assert len(result.sweeps) == 2
        assert result.des_boots == 2 * design_space.FRONTIER_K

    def test_frontier_identical_to_exhaustive(self, result):
        assert result.frontier_identical is True

    def test_frontier_des_confirms_predictions(self, result):
        for sweep in result.sweeps:
            for cell in sweep.frontier:
                assert cell.des_ms == pytest.approx(cell.predicted_ms)

    def test_frontier_sorted_by_predicted_time(self, result):
        for sweep in result.sweeps:
            times = [cell.predicted_ms for cell in sweep.frontier]
            assert times == sorted(times)

    def test_prefilter_beats_exhaustive(self, result):
        assert result.speedup is not None and result.speedup > 1.0

    def test_render_mentions_skips_and_identity(self, result):
        text = design_space.render(result)
        assert "ranked analytically" in text
        assert "frontier identical" in text
        for sweep in result.sweeps:
            assert f"Design space — {sweep.label}" in text

    def test_full_matrix_is_at_least_500_cells(self):
        cells = sum(len(jobs) for _, jobs in design_space.sweep_jobs())
        assert cells >= 500
