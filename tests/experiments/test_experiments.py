"""Integration tests: every experiment driver reproduces its artifact's
shape (who wins, by roughly what factor, where crossovers fall)."""

import pytest

from repro.experiments import (background, fig1_boot_sequence, fig2_dependency_graph,
                               fig3_complexity, fig5_rcu_bootchart,
                               fig6_breakdown, fig7_bbgroup_dbus, kernel_opt,
                               tradeoff)
from repro.quantities import msec, sec


class TestFig1:
    def test_segments_and_total(self):
        result = fig1_boot_sequence.run()
        segments = result.segments_ms
        assert segments["kernel (memory init)"] == pytest.approx(370, rel=0.05)
        assert segments["init scheme initialization"] == pytest.approx(195,
                                                                       rel=0.05)
        assert result.report.boot_complete_ms == pytest.approx(8100, rel=0.05)
        assert "Figure 1" in fig1_boot_sequence.render(result)


class TestFig2:
    def test_graph_statistics(self):
        result = fig2_dependency_graph.run()
        assert result.opensource.units == 137
        assert result.growth_factor == pytest.approx(2.0, abs=0.2)
        assert result.opensource.weak_edges > result.opensource.strong_edges
        assert result.opensource_dot.startswith("digraph")
        assert "2.0" in fig2_dependency_graph.render(result)[:2000]


class TestFig3:
    def test_new_service_fragments_group_b(self):
        result = fig3_complexity.run()
        assert result.group_b_split
        assert result.before.fragments["b"] == 1
        assert result.after.fragments["b"] == 2

    def test_escalated_case_has_cycle(self):
        result = fig3_complexity.run()
        cycles = (result.cycle_report.of_kind("cycle")
                  + result.cycle_report.of_kind("ordering-cycle"))
        assert len(cycles) >= 1
        assert "Figure 3" in fig3_complexity.render(result)


class TestFig5:
    def test_boosted_brings_services_up_earlier(self):
        result = fig5_rcu_bootchart.run()
        assert result.boosted_ready_earlier
        # Strictly more services up at some mid-boot checkpoint.
        rows = result.ready_at_checkpoints()
        assert any(boosted > conventional for _, conventional, boosted in rows)
        assert "Figure 5(a)" in fig5_rcu_bootchart.render(result)

    def test_render_with_charts_includes_bars(self):
        result = fig5_rcu_bootchart.run()
        text = fig5_rcu_bootchart.render(result, with_charts=True)
        assert "#" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_breakdown.run()

    def test_endpoints_match_paper(self, result):
        assert result.no_bb.boot_complete_ns == pytest.approx(sec(8.1), rel=0.05)
        assert result.bb.boot_complete_ns == pytest.approx(sec(3.5), rel=0.05)
        assert result.reduction == pytest.approx(0.57, abs=0.03)

    def test_kernel_rows(self, result):
        assert result.no_bb.kernel_timings.meminit_ns == pytest.approx(
            msec(370), rel=0.05)
        assert result.bb.kernel_timings.meminit_ns == pytest.approx(
            msec(110), rel=0.05)
        assert result.bb.kernel_timings.rootfs_ns == pytest.approx(
            msec(75), rel=0.1)

    def test_feature_savings_shape(self, result):
        """Each mechanism's cumulative saving lands within 25% of the
        paper's attribution (the big rows) or 5 ms (the small ones)."""
        savings = result.cumulative_savings_ms
        paper = dict(fig6_breakdown.PAPER_FEATURE_SAVINGS_MS)
        for feature in ("rcu_booster", "deferred_executor",
                        "defer_startup_tasks", "deferred_meminit",
                        "ondemand_modularizer"):
            assert savings[feature] == pytest.approx(paper[feature], rel=0.25), \
                feature
        assert result.bb_group_saving_ms() == pytest.approx(1101, rel=0.35)
        # Pre-parser: loading + parsing rows combined.
        assert savings["preparser"] == pytest.approx(381, rel=0.25)

    def test_rcu_is_the_largest_single_win(self, result):
        savings = result.cumulative_savings_ms
        assert savings["rcu_booster"] == max(savings.values())

    def test_render(self, result):
        text = fig6_breakdown.render(result)
        assert "Figure 6" in text
        assert "TOTAL" in text
        assert "1101 ms" in text


class TestFig7:
    def test_var_mount_isolation_advances_dbus(self):
        result = fig7_bbgroup_dbus.run()
        assert result.dbus_advanced_by_ms > 100
        assert 1.3 <= result.advance_factor <= 4.0  # paper: 2.3x
        # var.mount itself launches almost immediately once isolated.
        assert result.boosted_ms("var.mount")[0] < 50
        assert result.conventional_ms("var.mount")[0] > 300
        assert "Figure 7" in fig7_bbgroup_dbus.render(result)


class TestTradeoff:
    @pytest.fixture(scope="class")
    def result(self):
        return tradeoff.run()

    def test_mean_overhead_below_paper_bound(self, result):
        assert 0 < result.mean_overhead_ms < 15.0

    def test_second_launch_free(self, result):
        assert abs(result.second_launch_overhead_ms) < 1.0

    def test_boosted_rcu_costs_more_cpu_uncontended(self, result):
        assert result.rcu_uncontended_cpu_ratio > 1.0

    def test_render(self, result):
        assert "trade-off" in tradeoff.render(result)


class TestKernelOpt:
    def test_sweep_matches_paper_endpoints(self):
        result = kernel_opt.run()
        assert result.unoptimized_ns == pytest.approx(sec(6.127), rel=0.05)
        assert result.optimized_ns == pytest.approx(msec(698), rel=0.05)
        times = [ns for _, ns in result.steps]
        assert times == sorted(times, reverse=True)  # monotone improvement
        assert "6127" in kernel_opt.render(result)


class TestBackground:
    @pytest.fixture(scope="class")
    def result(self):
        return background.run()

    def test_galaxy_snapshot_restore_about_ten_seconds(self, result):
        assert result.snapshot_restore_s["Galaxy-S6-like (3 GiB, UFS)"] == \
            pytest.approx(10.5, abs=1.0)

    def test_creation_slower_than_restore(self, result):
        for name in result.snapshot_restore_s:
            assert result.snapshot_create_s[name] > result.snapshot_restore_s[name]

    def test_compression_helps_only_slow_flash(self, result):
        helps = {name: flag for name, _, _, flag in result.compression_rows}
        assert not helps["UFS-2.0"]
        assert not helps["eMMC"]
        assert helps["old-NAND"]

    def test_silent_boot_violates_eu_rule(self, result):
        assert not result.silent_boot_meets_eu_rule

    def test_crossover_is_decompressor_bound(self, result):
        assert result.crossover_mib_s == pytest.approx(35.0)

    def test_nx300_factory_snapshot_is_about_one_second(self, result):
        """§2.1: the NX300(M) achieved ~1 s with snapshot booting."""
        assert result.snapshot_restore_s[
            "NX300 factory snapshot (small image)"] == pytest.approx(1.0,
                                                                     abs=0.3)

    def test_render(self, result):
        text = background.render(result)
        assert "snapshot" in text
        assert "crossover" in text
