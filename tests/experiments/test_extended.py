"""Tests for the extended experiments: scaling, boot modes, portability,
prestart."""

import pytest

from repro.experiments import boot_modes, portability, prestart, scaling


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return scaling.run(factors=(0.5, 1.0, 2.0))

    def test_service_counts_scale(self, result):
        counts = [services for _, services, _, _ in result.rows]
        assert counts == sorted(counts)
        assert counts[-1] > 2 * counts[0]

    def test_no_bb_grows_bb_stays_flat(self, result):
        assert result.no_bb_growth > 1.8
        assert result.bb_growth < 1.4

    def test_render(self, result):
        assert "scaling sweep" in scaling.render(result)

    def test_scaled_params_floor(self):
        params = scaling.scaled_params(0.01)
        assert params.infra_services >= 1
        assert params.boot_module_count >= 4


class TestBootModes:
    @pytest.fixture(scope="class")
    def result(self):
        return boot_modes.run()

    def test_only_bb_cold_boot_is_acceptable(self, result):
        assert result.winners == ["cold boot + BB"]

    def test_each_alternative_fails_its_documented_constraint(self, result):
        assert not result.mode("suspend-to-RAM (Instant On)").survives_unplug
        assert not result.mode("silent boot then suspend").meets_eu_standby
        assert not result.mode(
            "snapshot boot (factory image)").supports_third_party_apps
        assert result.mode("snapshot boot (runtime image)").latency_s > 4.0

    def test_unknown_mode_raises(self, result):
        with pytest.raises(KeyError):
            result.mode("teleportation")

    def test_render(self, result):
        text = boot_modes.render(result)
        assert "cold boot + BB" in text
        assert "NO" in text


class TestPrestart:
    def test_static_build_is_the_right_choice(self):
        result = prestart.run()
        assert result.static_wins_for_group
        assert result.prefork_group_net_ms < 0
        assert "Section 5" in prestart.render(result)


class TestPortability:
    def test_five_device_classes_all_improve(self):
        result = portability.run()
        assert len(result.rows) == 5
        assert result.helps_everywhere
