"""Smoke tests for the recovery-matrix experiment driver."""

from repro.experiments import recovery_matrix
from repro.recovery import RUNG_RESCUE, RUNG_RESTART
from repro.runner import SweepRunner


class TestRecoveryMatrix:
    def test_smoke_subset_converges_everywhere(self):
        result = recovery_matrix.run(smoke=True)
        assert result.smoke
        assert result.all_converged
        by_preset = {row.preset: row for row in result.presets}
        assert set(by_preset) == set(recovery_matrix.SMOKE_PRESETS)
        # The smoke presets were chosen one per convergence depth.
        assert by_preset["transient-storage-burst"].rungs == (RUNG_RESTART,)
        assert by_preset["missing-device"].rungs == (RUNG_RESCUE,)
        assert by_preset["missing-device"].masked_units[0] > 0
        for row in result.presets:
            assert all(ms > 0 for ms in row.total_ms)

    def test_render_names_presets_and_verdict(self):
        result = recovery_matrix.run(smoke=True)
        text = recovery_matrix.render(result)
        assert "Recovery matrix" in text
        for preset in recovery_matrix.SMOKE_PRESETS:
            assert preset in text
        assert "every fault preset converges" in text
        assert "smoke subset" in text

    def test_jobs_are_cache_deduplicated(self):
        runner = SweepRunner()
        recovery_matrix.run(runner, smoke=True)
        first = runner.stats.executed
        assert first == len(recovery_matrix.SMOKE_PRESETS)
        recovery_matrix.run(runner, smoke=True)
        assert runner.stats.executed == first  # all hits the second time
