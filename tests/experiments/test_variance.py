"""Tests for the boot-time variance experiment."""

import pytest

from repro.core import BBConfig, BootSimulation
from repro.experiments import variance
from repro.workloads.tizen_tv import PAPER_BB_GROUP, perturbed_tv_workload


@pytest.fixture(scope="module")
def result():
    return variance.run(instances=6)


def test_instances_actually_differ(result):
    assert len(set(result.no_bb_ms)) > 1


def test_bb_is_more_consistent(result):
    assert result.bb_stddev_ms < result.no_bb_stddev_ms
    assert result.bb_cv <= result.no_bb_cv


def test_means_stay_near_calibration(result):
    assert result.no_bb_mean_ms == pytest.approx(8100, rel=0.08)
    assert result.bb_mean_ms == pytest.approx(3500, rel=0.08)


def test_render(result):
    text = variance.render(result)
    assert "consistency" in text
    assert "coefficient of variation" in text


def test_perturbation_leaves_chain_untouched_by_default():
    workload = perturbed_tv_workload(instance=3)
    baseline = perturbed_tv_workload(instance=4)
    registry_a = workload.fresh_registry()
    registry_b = baseline.fresh_registry()
    for name in PAPER_BB_GROUP:
        assert registry_a.get(name).cost == registry_b.get(name).cost
    # Non-chain units do differ between instances.
    assert any(registry_a.get(n).cost != registry_b.get(n).cost
               for n in registry_a.names if n not in PAPER_BB_GROUP)


def test_perturb_chain_flag():
    a = perturbed_tv_workload(instance=1, perturb_chain=True).fresh_registry()
    b = perturbed_tv_workload(instance=2, perturb_chain=True).fresh_registry()
    assert any(a.get(n).cost != b.get(n).cost for n in PAPER_BB_GROUP)


def test_same_instance_is_deterministic():
    a = BootSimulation(perturbed_tv_workload(5), BBConfig.none()).run()
    b = BootSimulation(perturbed_tv_workload(5), BBConfig.none()).run()
    assert a.boot_complete_ns == b.boot_complete_ns
