"""End-to-end degraded-boot behaviour under the named presets."""

import pytest

from repro.core import BBConfig, BootSimulation, DegradedBootError
from repro.errors import ServiceFailureError
from repro.faults import FaultPlan, PathFault, ServiceFault, build_preset
from repro.workloads import opensource_tv_workload


def _boot(plan, bb=None):
    config = bb if bb is not None else BBConfig.full()
    return BootSimulation(opensource_tv_workload(), config,
                          fault_plan=plan).run()


class TestGracefulDegradation:
    def test_out_of_group_crashes_complete_degraded(self):
        """§2.5.2: app/vendor casualties must not block boot completion."""
        report = _boot(build_preset("flaky-services", seed=1))
        assert report.degraded
        assert report.failed_units  # casualties are named...
        for unit in report.failed_units:
            # ...and none of them is on the completion chain.
            assert unit.startswith(("app-", "vendor-", "middleware-"))
        assert sum(report.injected_faults.values()) > 0

    def test_deferred_retry_recovers_with_backoff(self):
        """fail_attempts=1 on every deferred task: one retry each, then
        success — nothing gives up."""
        report = _boot(build_preset("flaky-services", seed=1))
        tally = report.injected_faults
        assert tally["deferred_failures"] > 0
        assert tally["deferred_retries"] == tally["deferred_failures"]
        assert tally["deferred_giveups"] == 0
        assert report.deferred_failed == []
        # The retries pushed quiescence past boot completion.
        assert report.all_done_ns > report.boot_complete_ns

    def test_healthy_plan_reports_nothing_injected(self):
        report = _boot(FaultPlan(seed=1))
        assert not report.degraded
        assert sum(report.injected_faults.values()) == 0


class TestFatalFaults:
    def test_broken_tuner_names_the_root_cause(self):
        with pytest.raises(DegradedBootError) as excinfo:
            _boot(build_preset("broken-tuner", seed=1))
        report = excinfo.value.report
        assert not report.boot_wedged
        assert report.culprit_unit == "tuner.service"
        assert "tuner.service" in report.failed_units
        # Collateral: the completion units failed because tuner did.
        assert "fasttv.service" in report.failed_units

    def test_missing_device_wedges_with_device_diagnosis(self):
        with pytest.raises(DegradedBootError) as excinfo:
            _boot(build_preset("missing-device", seed=1))
        report = excinfo.value.report
        assert report.boot_wedged
        assert report.culprit_unit == "fasttv.service"
        assert report.culprit_device == "/dev/av_drv"
        assert report.unsettled_units  # the stuck chain is listed

    def test_missing_device_wedges_without_bb_too(self):
        """No on-demand modularizer to paper over it: the kmod-provided
        node is suppressed and the boot still wedges deterministically."""
        with pytest.raises(DegradedBootError) as excinfo:
            _boot(build_preset("missing-device", seed=1), bb=BBConfig.none())
        assert excinfo.value.report.culprit_device == "/dev/av_drv"

    def test_degraded_error_is_a_service_failure(self):
        """Existing ``except ServiceFailureError`` callers keep working."""
        with pytest.raises(ServiceFailureError):
            _boot(build_preset("broken-tuner", seed=1))

    def test_summary_is_human_readable(self):
        with pytest.raises(DegradedBootError) as excinfo:
            _boot(build_preset("missing-device", seed=1))
        text = excinfo.value.report.summary()
        assert "wedged" in text
        assert "/dev/av_drv" in text


class TestLateAndCustomPlans:
    def test_late_device_slows_but_completes(self):
        healthy = _boot(FaultPlan())
        late = _boot(build_preset("late-devices", seed=1))
        assert not late.degraded
        assert late.boot_complete_ns > healthy.boot_complete_ns

    def test_in_chain_flake_recovers_via_injected_retry(self):
        """dbus crashes once; its ON_FAILURE-equivalent here is that the
        completion chain simply fails — assert the diagnosis blames dbus,
        not its dependents."""
        plan = FaultPlan(seed=1, services=(
            ServiceFault(unit="dbus.service", fail_attempts=99),))
        with pytest.raises(DegradedBootError) as excinfo:
            _boot(plan)
        assert excinfo.value.report.culprit_unit == "dbus.service"

    def test_custom_missing_path_plan(self):
        plan = FaultPlan(seed=1, paths=(
            PathFault(path="/dev/demux_drv", missing=True),))
        with pytest.raises(DegradedBootError) as excinfo:
            _boot(plan)
        assert excinfo.value.report.culprit_device == "/dev/demux_drv"
