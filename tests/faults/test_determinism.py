"""Acceptance criterion: same seed + same FaultPlan => bit-identical
results serially, in parallel, and through a warm cache."""

from repro.analysis.export import report_to_json
from repro.core import BBConfig
from repro.core.degraded import DegradedBootReport
from repro.faults import build_preset
from repro.runner import ResultCache, SimJob, SweepRunner
from repro.workloads import opensource_tv_workload


def _fault_jobs():
    return [
        SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                    fault_plan=build_preset("flaky-services", 1)),
        SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                    fault_plan=build_preset("broken-tuner", 1)),
        SimJob.boot(opensource_tv_workload, bb=BBConfig.none(),
                    fault_plan=build_preset("storage-storm", 1)),
        SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                    fault_plan=build_preset("flaky-services", 1)),  # dup
    ]


def test_parallel_equals_serial_with_fault_plans():
    jobs = _fault_jobs()
    serial = SweepRunner(jobs=1).run(jobs)
    with SweepRunner(jobs=2) as runner:
        parallel = runner.run(jobs)
    assert parallel == serial
    # Degraded outcomes travel across process boundaries as results.
    assert isinstance(serial[1], DegradedBootReport)
    assert serial[0] == serial[3]


def test_warm_cache_equals_fresh_run(tmp_path):
    jobs = _fault_jobs()
    cold = SweepRunner(cache=ResultCache(tmp_path)).run(jobs)
    warm_runner = SweepRunner(cache=ResultCache(tmp_path))
    warm = warm_runner.run(jobs)
    assert warm == cold
    assert warm_runner.stats.executed == 0  # everything served from disk
    assert warm_runner.cache.stats.disk_hits > 0


def test_same_plan_same_report_bytes():
    job = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                      fault_plan=build_preset("flaky-services", 3))
    first = SweepRunner().run_one(job)
    second = SweepRunner().run_one(job)
    assert report_to_json(first) == report_to_json(second)


def test_different_seed_changes_the_outcome():
    reports = [
        SweepRunner().run_one(SimJob.boot(
            opensource_tv_workload, bb=BBConfig.full(),
            fault_plan=build_preset("flaky-services", seed)))
        for seed in (1, 2)]
    assert reports[0].failed_units != reports[1].failed_units
