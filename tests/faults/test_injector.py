"""Injector determinism: same plan, same answers, no shared RNG."""

from repro.faults import (BootFaultInjector, DeferredFault, FaultPlan,
                          ModuleFault, PathFault, ServiceFault, SettleFault,
                          StorageFault)


def _plan(**kwargs):
    kwargs.setdefault("seed", 42)
    return FaultPlan(**kwargs)


class TestDeterminism:
    def test_two_injectors_agree_on_every_stream(self):
        plan = _plan(
            storage=(StorageFault(spike_rate=0.5, error_rate=0.2),),
            services=(ServiceFault(unit="app-*.service", fail_rate=0.5),),
            modules=(ModuleFault(module="drv_*", fail_rate=0.5),),
            settles=(SettleFault(unit="*", multiplier=1.2, jitter=0.5),),
            deferred=(DeferredFault(task="*", fail_rate=0.5),))
        a, b = BootFaultInjector(plan), BootFaultInjector(plan)
        for index in range(50):
            assert (a.storage_extra_ns(4096, False)
                    == b.storage_extra_ns(4096, False)), index
        for attempt in range(1, 6):
            assert (a.service_decision("app-03.service", attempt)
                    == b.service_decision("app-03.service", attempt))
            assert a.deferred_fails("task-x", attempt) == b.deferred_fails(
                "task-x", attempt)
            assert (a.settle_ns("cam.service", attempt, 1_000_000)
                    == b.settle_ns("cam.service", attempt, 1_000_000))
        for module in ("drv_001", "drv_002", "tuner_drv"):
            assert a.module_decision(module) == b.module_decision(module)

    def test_draws_are_independent_of_order(self):
        plan = _plan(services=(ServiceFault(unit="*", fail_rate=0.5),))
        forward = BootFaultInjector(plan)
        backward = BootFaultInjector(plan)
        units = [f"u{i}.service" for i in range(10)]
        answers_fwd = {u: forward.service_decision(u, 1) for u in units}
        answers_bwd = {u: backward.service_decision(u, 1)
                       for u in reversed(units)}
        assert answers_fwd == answers_bwd

    def test_seed_changes_the_draws(self):
        spec = ServiceFault(unit="*", fail_rate=0.5)
        verdicts = set()
        for seed in range(20):
            injector = BootFaultInjector(_plan(seed=seed, services=(spec,)))
            verdicts.add(injector.service_decision("x.service", 1).fail)
        assert verdicts == {True, False}  # 20 seeds see both outcomes


class TestDecisions:
    def test_fail_attempts_is_deterministic_then_clean(self):
        plan = _plan(services=(ServiceFault(unit="a.service",
                                            fail_attempts=2),))
        injector = BootFaultInjector(plan)
        assert injector.service_decision("a.service", 1).fail
        assert injector.service_decision("a.service", 2).fail
        assert not injector.service_decision("a.service", 3).fail
        assert not injector.service_decision("other.service", 1).fail
        assert injector.stats.service_failures == 2

    def test_hang_applies_with_rate_one(self):
        plan = _plan(services=(ServiceFault(unit="slow.service",
                                            hang_ns=5_000_000),))
        injector = BootFaultInjector(plan)
        assert injector.service_decision("slow.service", 1).hang_ns == 5_000_000
        assert injector.service_decision("fast.service", 1).hang_ns == 0

    def test_storage_writes_excluded_by_default(self):
        plan = _plan(storage=(StorageFault(spike_rate=1.0, spike_ns=100),))
        injector = BootFaultInjector(plan)
        assert injector.storage_extra_ns(1024, is_write=False) == 100
        assert injector.storage_extra_ns(1024, is_write=True) == 0
        assert injector.stats.storage_spikes == 1

    def test_module_glob_and_latency(self):
        plan = _plan(modules=(ModuleFault(module="drv_*", fail_rate=1.0),
                              ModuleFault(module="*", fail_rate=0.0,
                                          extra_latency_ns=1_000)))
        injector = BootFaultInjector(plan)
        fail, extra = injector.module_decision("drv_007")
        assert fail and extra == 1_000
        fail, extra = injector.module_decision("tuner_drv")
        assert not fail and extra == 1_000
        assert injector.stats.module_failures == 1

    def test_blocked_and_late_paths(self):
        plan = _plan(paths=(PathFault(path="/dev/gone", missing=True),
                            PathFault(path="/dev/slow", delay_ns=7),
                            PathFault(path="/dev/noop")))
        injector = BootFaultInjector(plan)
        assert injector.path_blocked("/dev/gone")
        assert not injector.path_blocked("/dev/slow")
        assert injector.late_paths() == (("/dev/slow", 7),)

    def test_settle_never_negative_and_untouched_without_match(self):
        plan = _plan(settles=(SettleFault(unit="cam.*", multiplier=0.0),))
        injector = BootFaultInjector(plan)
        assert injector.settle_ns("cam.service", 1, 1_000_000) == 0
        assert injector.settle_ns("net.service", 1, 1_000_000) == 1_000_000

    def test_stats_as_dict_matches_fields(self):
        injector = BootFaultInjector(_plan())
        tally = injector.stats.as_dict()
        assert tally["service_failures"] == 0
        assert injector.stats.total_events() == 0
        injector.stats.service_failures = 3
        assert injector.stats.total_events() == 3
