"""FaultPlan value semantics: validation, pickling, fingerprints."""

import pickle

import pytest

from repro.core import BBConfig
from repro.errors import ConfigurationError
from repro.faults import (DeferredFault, FaultPlan, ModuleFault, PathFault,
                          ServiceFault, SettleFault, StorageFault,
                          build_preset)
from repro.faults.presets import PRESETS
from repro.runner import SimJob
from repro.runner.jobs import canonical_repr
from repro.workloads import opensource_tv_workload


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            StorageFault(spike_rate=1.5)
        with pytest.raises(ConfigurationError):
            ServiceFault(unit="x.service", fail_rate=-0.1)
        with pytest.raises(ConfigurationError):
            ModuleFault(module="drv", fail_rate=2.0)

    def test_durations_cannot_be_negative(self):
        with pytest.raises(ConfigurationError):
            StorageFault(spike_ns=-1)
        with pytest.raises(ConfigurationError):
            PathFault(path="/dev/x", delay_ns=-5)
        with pytest.raises(ConfigurationError):
            ServiceFault(unit="x.service", hang_ns=-1)

    def test_patterns_cannot_be_empty(self):
        with pytest.raises(ConfigurationError):
            ServiceFault(unit="")
        with pytest.raises(ConfigurationError):
            ModuleFault(module="")
        with pytest.raises(ConfigurationError):
            PathFault(path="")

    def test_plan_rejects_wrong_spec_types(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(services=(StorageFault(),))
        with pytest.raises(ConfigurationError):
            FaultPlan(storage=[StorageFault()])  # list, not tuple

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            SettleFault(multiplier=-1.0)


class TestValueSemantics:
    def test_empty_and_spec_count(self):
        assert FaultPlan().empty
        plan = FaultPlan(services=(ServiceFault(unit="a.service"),),
                         deferred=(DeferredFault(),))
        assert not plan.empty
        assert plan.spec_count() == 2

    def test_plans_pickle_roundtrip(self):
        for name in PRESETS:
            plan = build_preset(name, seed=7)
            clone = pickle.loads(pickle.dumps(plan))
            assert clone == plan

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError):
            build_preset("nope", seed=1)

    def test_describe_mentions_label_seed_and_specs(self):
        text = build_preset("broken-tuner", seed=3).describe()
        assert "broken-tuner" in text
        assert "seed=3" in text
        assert "services" in text

    def test_canonical_repr_is_stable_across_equal_plans(self):
        a = build_preset("flaky-services", seed=5)
        b = build_preset("flaky-services", seed=5)
        assert canonical_repr(a) == canonical_repr(b)
        assert canonical_repr(a) != canonical_repr(
            build_preset("flaky-services", seed=6))


class TestFingerprint:
    def test_fault_plan_participates_in_fingerprint(self):
        healthy = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        faulted = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                              fault_plan=build_preset("broken-tuner", 1))
        reseeded = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                               fault_plan=build_preset("broken-tuner", 2))
        assert healthy.fingerprint() != faulted.fingerprint()
        assert faulted.fingerprint() != reseeded.fingerprint()

    def test_equal_plans_yield_equal_fingerprints(self):
        a = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                        fault_plan=build_preset("late-devices", 4))
        b = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                        fault_plan=build_preset("late-devices", 4))
        assert a.fingerprint() == b.fingerprint()
