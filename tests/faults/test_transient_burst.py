"""Tests for the transient-storage-burst preset and attempt-offset
carryover in the injector (escalation-aware replay)."""

from repro.faults import PRESETS, build_preset
from repro.faults.presets import transient_storage_burst


def test_preset_registered():
    assert "transient-storage-burst" in PRESETS
    plan = build_preset("transient-storage-burst", seed=3)
    assert plan.seed == 3
    assert plan.label == "transient-storage-burst"


def test_burst_fails_first_four_var_mount_attempts():
    injector = transient_storage_burst(seed=1).compile()
    decisions = [injector.service_decision("var.mount", attempt)
                 for attempt in range(1, 6)]
    assert [d.fail for d in decisions] == [True, True, True, True, False]


def test_attempt_offsets_shift_the_failure_budget():
    """With one attempt already spent in an earlier supervised boot, the
    next boot's attempt 4 is effectively attempt 5 — past the burst."""
    plan = transient_storage_burst(seed=1)
    offset = plan.compile(attempt_offsets={"var.mount": 1})
    assert offset.service_decision("var.mount", 3).fail is True
    assert offset.service_decision("var.mount", 4).fail is False
    # Units without an offset are unaffected.
    plain = plan.compile()
    assert plain.service_decision("var.mount", 4).fail is True


def test_offsets_keep_probabilistic_draws_aligned():
    """An offset attempt must reuse the same per-(unit, attempt) draw the
    unsupervised run would have made at that effective attempt."""
    plan = build_preset("flaky-services", seed=7)
    base = plan.compile()
    shifted = plan.compile(attempt_offsets={"app-03.service": 2})
    for attempt in range(1, 8):
        assert (shifted.service_decision("app-03.service", attempt).fail
                == base.service_decision("app-03.service", attempt + 2).fail)


def test_storage_burst_also_degrades_the_channel():
    plan = transient_storage_burst(seed=1)
    assert plan.storage, "the preset must exercise the storage stream too"
    assert plan.storage[0].error_rate > 0
