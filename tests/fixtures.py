"""Shared test fixtures: a miniature TV-like unit set and boot helpers."""

from __future__ import annotations

from repro.hw.presets import ue48h6200
from repro.initsys.manager import InitManager, ManagerConfig
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator


def mini_tv_registry() -> UnitRegistry:
    """A 10-unit TV-shaped workload: mounts, dbus, broadcast path, apps."""
    def cost(cpu_ms, *, rcu=0, hw_ms=0, bytes_kib=64, procs=1):
        return SimCost(init_cpu_ns=msec(cpu_ms), rcu_syncs=rcu,
                       hw_settle_ns=msec(hw_ms), exec_bytes=bytes_kib * 1024,
                       processes=procs)

    return UnitRegistry([
        Unit(name="multi-user.target",
             requires=["fasttv.service"],
             wants=["messenger.service", "store.service"]),
        Unit(name="var.mount", service_type=ServiceType.ONESHOT,
             provides_paths=["/var"], cost=cost(4, bytes_kib=8)),
        Unit(name="dbus.socket", service_type=ServiceType.ONESHOT,
             provides_paths=["/run/dbus/socket"], cost=cost(2, bytes_kib=8)),
        Unit(name="dbus.service", service_type=ServiceType.NOTIFY,
             requires=["var.mount", "dbus.socket"],
             after=["var.mount", "dbus.socket"],
             provides_paths=["/run/dbus"], cost=cost(10, rcu=1, procs=3)),
        Unit(name="tuner.service", service_type=ServiceType.NOTIFY,
             requires=["dbus.service"], after=["dbus.service"],
             cost=cost(8, rcu=2, hw_ms=20)),
        Unit(name="demux.service", service_type=ServiceType.NOTIFY,
             requires=["dbus.service"], after=["dbus.service"],
             cost=cost(6, rcu=1, hw_ms=8)),
        Unit(name="remote-input.service", service_type=ServiceType.SIMPLE,
             requires=["dbus.service"], after=["dbus.service"], cost=cost(3)),
        Unit(name="fasttv.service", service_type=ServiceType.NOTIFY,
             requires=["tuner.service", "demux.service", "remote-input.service"],
             after=["tuner.service", "demux.service", "remote-input.service"],
             cost=cost(15, rcu=1, bytes_kib=512)),
        Unit(name="messenger.service", service_type=ServiceType.SIMPLE,
             requires=["dbus.service"], after=["dbus.service"],
             cost=cost(120, bytes_kib=1024)),
        Unit(name="store.service", service_type=ServiceType.SIMPLE,
             requires=["dbus.service"], after=["dbus.service"],
             cost=cost(150, bytes_kib=1024)),
    ])


COMPLETION_UNITS = ("fasttv.service", "remote-input.service")


def boot_mini_tv(config: ManagerConfig | None = None, *, cores: int = 4,
                 registry: UnitRegistry | None = None, **manager_kwargs):
    """Run a full user-space boot of the mini TV; returns (sim, manager)."""
    sim = Simulator(cores=cores)
    platform = ue48h6200().attach(sim)
    rcu = RCUSubsystem(sim)
    if config is None:
        config = ManagerConfig(completion_units=COMPLETION_UNITS)
    if registry is None:
        registry = mini_tv_registry()
    manager = InitManager(sim, registry, platform.storage, rcu, config,
                          **manager_kwargs)
    manager.spawn()
    sim.run()
    return sim, manager
