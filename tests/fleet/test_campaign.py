"""The fleet campaign: matrix construction and a tiny end-to-end run."""

from repro.fleet import build_specs, run_campaign
from repro.fleet.campaign import render, specs_expanded_total
from repro.fleet.protocol import job_from_spec


class TestBuildSpecs:
    def test_full_matrix_shape(self):
        specs = build_specs()
        # 6 workloads x 2 BB x (healthy + 3 presets x 2 seeds) = 84 cells
        assert len(specs) == 84
        assert specs_expanded_total(specs) == 10_080

    def test_smoke_matrix_shape(self):
        specs = build_specs(smoke=True, total_jobs=200)
        # 2 workloads x 2 BB x (healthy + 1 preset x 1 seed) = 8 cells
        assert len(specs) == 8
        assert specs_expanded_total(specs) == 200

    def test_popularity_skew_is_monotone_at_the_head(self):
        specs = build_specs(total_jobs=10_080)
        repeats = [spec["repeat"] for spec in specs]
        assert repeats[1] >= repeats[2] >= repeats[10] >= repeats[-1] >= 1

    def test_every_cell_is_a_valid_wire_spec(self):
        for spec in build_specs():
            job, repeat = job_from_spec(spec)
            assert repeat >= 1
            assert job.fingerprint()

    def test_cells_are_unique_jobs(self):
        specs = build_specs()
        fingerprints = {job_from_spec(spec)[0].fingerprint()
                        for spec in specs}
        assert len(fingerprints) == len(specs)


class TestCampaignRun:
    def test_tiny_smoke_campaign_is_byte_identical(self):
        result = run_campaign(smoke=True, total_jobs=40, max_workers=2)
        assert result.total_jobs == 40
        assert result.unique_jobs == 8
        assert result.identical, result.mismatches
        assert result.mismatches == []
        # Every ticket is accounted for exactly once.
        assert (result.executed + result.cache_hits
                + result.coalesced) == 40
        assert result.jobs_per_min > 0
        assert result.peak_workers >= 1

    def test_render_mentions_the_verdict(self):
        result = run_campaign(smoke=True, total_jobs=16, max_workers=1)
        text = render(result)
        assert "fleet == serial" in text
        assert "yes" in text
        assert "jobs submitted" in text
