"""Client error paths: every transport failure surfaces as a typed error.

The fleet client promises :class:`~repro.errors.FleetError` for
transport-level failures (unreachable service, mid-stream disconnect)
and :class:`~repro.errors.ProtocolError` for wire garbage — never a raw
``ConnectionError``/``OSError``/``JSONDecodeError`` leaking to callers.
These tests run real sockets with hostile fake servers; pytest-asyncio
is unavailable, so each wraps its scenario in ``asyncio.run``.
"""

import asyncio

import pytest

from repro.errors import FleetError, ProtocolError, ReproError
from repro.fleet import FleetClient
from repro.fleet.client import status_sync, submit_sync


def _free_port():
    """Bind-and-release a port nothing listens on afterwards."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def _hostile_server(handler):
    """Start a one-shot server running ``handler(reader, writer)``."""
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


class TestConnectionRefused:
    def test_connect_raises_fleet_error(self):
        port = _free_port()

        async def scenario():
            async with FleetClient("127.0.0.1", port):
                pass  # pragma: no cover - connect must raise first

        with pytest.raises(FleetError, match="cannot reach fleet service"):
            asyncio.run(scenario())

    def test_refused_error_is_typed_not_raw_oserror(self):
        port = _free_port()

        async def scenario():
            await FleetClient("127.0.0.1", port).connect()

        try:
            asyncio.run(scenario())
        except ReproError as exc:
            assert isinstance(exc, FleetError)
            assert isinstance(exc.__cause__, OSError)
        else:  # pragma: no cover
            pytest.fail("connect to a dead port did not raise")

    def test_sync_wrappers_raise_fleet_error(self):
        port = _free_port()
        with pytest.raises(FleetError):
            submit_sync("127.0.0.1", port, [{"kind": "boot"}])
        with pytest.raises(FleetError):
            status_sync("127.0.0.1", port)


class TestServerDrainMidStream:
    def test_disconnect_after_ack_raises_fleet_error(self):
        """A server that acks then hangs up mid-stream (drain/crash)."""
        async def handler(reader, writer):
            await reader.readline()  # the submit frame
            writer.write(b'{"event": "ack", "id": "sub-0", "jobs": 3}\n')
            await writer.drain()
            writer.close()  # drain mid-stream: no results, no done

        async def scenario():
            server, host, port = await _hostile_server(handler)
            try:
                async with FleetClient(host, port) as client:
                    await client.submit([{"kind": "boot"}])
            finally:
                server.close()
                await server.wait_closed()

        with pytest.raises(FleetError, match="mid-stream"):
            asyncio.run(scenario())

    def test_immediate_disconnect_raises_fleet_error(self):
        """A server that closes before sending anything at all."""
        async def handler(reader, writer):
            writer.close()

        async def scenario():
            server, host, port = await _hostile_server(handler)
            try:
                async with FleetClient(host, port) as client:
                    await client.status()
            finally:
                server.close()
                await server.wait_closed()

        with pytest.raises(FleetError, match="closed the connection"):
            asyncio.run(scenario())


class TestMalformedEventLine:
    @pytest.mark.parametrize("line", [
        b"not json at all\n",
        b'["an", "array", "frame"]\n',
        b'{"trailing garbage": 1}}}\n',
    ])
    def test_garbage_line_raises_protocol_error(self, line):
        async def handler(reader, writer):
            await reader.readline()
            writer.write(line)
            await writer.drain()
            await asyncio.sleep(0.2)
            writer.close()

        async def scenario():
            server, host, port = await _hostile_server(handler)
            try:
                async with FleetClient(host, port) as client:
                    await client.submit([{"kind": "boot"}])
            finally:
                server.close()
                await server.wait_closed()

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_protocol_error_is_fleet_error(self):
        """The hierarchy lets callers catch the whole family at once."""
        assert issubclass(ProtocolError, FleetError)
        assert issubclass(FleetError, ReproError)
