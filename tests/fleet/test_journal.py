"""The write-ahead job journal: durability semantics, unit-level.

These tests drive :class:`repro.fleet.journal.JobJournal` directly —
no sockets, no service — and pin the WAL contract: checksummed
round-trips, torn-tail tolerance vs mid-journal damage, idempotent
appends, and crash-safe checkpoint/compaction.
"""

import json

import pytest

from repro.errors import JournalError
from repro.fleet.journal import (JobJournal, decode_record, encode_record,
                                 load_checkpoint, parse_journal_bytes,
                                 replay_records)

SPECS = [{"kind": "boot", "workload": "tv", "bb": "full"}]


def _journal(tmp_path, **kwargs):
    return JobJournal(tmp_path / "journal", **kwargs)


class TestRecordCodec:
    def test_round_trip(self):
        record = {"type": "submit", "key": "k1", "sid": "s", "specs": SPECS,
                  "priority": 3}
        line = encode_record(record)
        assert line.endswith(b"\n")
        decoded = decode_record(line.rstrip(b"\n"))
        assert decoded == record

    def test_flipped_byte_fails_the_checksum(self):
        line = encode_record({"type": "done", "key": "k1"}).rstrip(b"\n")
        tampered = line.replace(b"k1", b"k2")
        assert decode_record(tampered) is None

    def test_non_json_and_non_object_lines_are_corrupt(self):
        assert decode_record(b"{half a rec") is None
        assert decode_record(b"[1, 2, 3]") is None


class TestParseJournalBytes:
    def test_torn_tail_is_skipped_not_fatal(self):
        good = encode_record({"type": "submit", "key": "a", "sid": "s",
                              "specs": SPECS, "priority": 0})
        torn = good[: len(good) // 2]
        records, skipped, valid_bytes = parse_journal_bytes(good + torn)
        assert len(records) == 1
        assert skipped == 1
        assert valid_bytes == len(good)  # the torn bytes are excluded

    def test_mid_journal_corruption_raises(self):
        good = encode_record({"type": "done", "key": "a"})
        with pytest.raises(JournalError, match="mid-journal damage"):
            parse_journal_bytes(b"garbage\n" + good)

    def test_blank_lines_are_ignored(self):
        good = encode_record({"type": "done", "key": "a"})
        records, skipped, valid_bytes = parse_journal_bytes(
            b"\n" + good + b"\n\n")
        assert len(records) == 1
        assert skipped == 0
        assert valid_bytes == 1 + len(good)


class TestReplay:
    def test_submit_then_done_closes(self):
        records = [{"type": "submit", "key": "a", "sid": "s",
                    "specs": SPECS, "priority": 0},
                   {"type": "done", "key": "a"}]
        assert replay_records(records) == {}

    def test_first_submit_wins(self):
        first = {"type": "submit", "key": "a", "sid": "s1",
                 "specs": SPECS, "priority": 0}
        second = dict(first, sid="s2")
        state = replay_records([first, second])
        assert state["a"]["sid"] == "s1"

    def test_replay_is_idempotent(self):
        records = [{"type": "submit", "key": "a", "sid": "s",
                    "specs": SPECS, "priority": 0},
                   {"type": "done", "key": "b"}]
        once = replay_records(records)
        twice = replay_records(records, replay_records(records))
        assert once == twice

    def test_unknown_type_and_missing_key_raise(self):
        with pytest.raises(JournalError, match="unknown journal record"):
            replay_records([{"type": "compact", "key": "a"}])
        with pytest.raises(JournalError, match="no key"):
            replay_records([{"type": "submit"}])


class TestJobJournal:
    def test_submit_persists_across_reopen(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.record_submit("k1", "sid-1", SPECS, 2)
        journal.close()
        reopened = _journal(tmp_path)
        assert reopened.depth == 1
        record = reopened.open_submissions["k1"]
        assert record["sid"] == "sid-1"
        assert record["specs"] == SPECS
        assert record["priority"] == 2
        reopened.close()

    def test_record_submit_is_idempotent(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.record_submit("k1", "sid-1", SPECS, 0)
        assert not journal.record_submit("k1", "sid-1", SPECS, 0)
        assert journal.stats.appended == 1
        journal.close()

    def test_done_clears_the_open_set(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        assert journal.record_done("k1")
        assert not journal.record_done("k1")
        journal.close()
        assert _journal(tmp_path).depth == 0

    def test_torn_tail_on_disk_is_tolerated(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        journal.close()
        with open(journal.journal_path, "ab") as handle:
            handle.write(b'{"type": "done", "key')  # power cut mid-append
        reopened = _journal(tmp_path)
        assert reopened.depth == 1
        assert reopened.stats.skipped_tail == 1
        reopened.close()

    def test_append_after_torn_tail_recovery_stays_replayable(
            self, tmp_path):
        # Torn tail -> reopen (replay skips it) -> append -> reopen
        # again.  Without truncating the torn bytes on recovery, the
        # append glues onto the partial line and the *second* reopen
        # rejects the file as mid-journal damage, losing the glued
        # record and wedging the service.
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        journal.record_submit("k2", "sid-2", SPECS, 0)
        journal.close()
        raw = journal.journal_path.read_bytes()
        journal.journal_path.write_bytes(raw[:-10])  # power cut tears k2
        recovered = _journal(tmp_path)
        assert set(recovered.open_submissions) == {"k1"}
        assert recovered.stats.skipped_tail == 1
        assert recovered.record_done("k1")
        assert recovered.record_submit("k3", "sid-3", SPECS, 0)
        recovered.close()
        reopened = _journal(tmp_path)
        assert set(reopened.open_submissions) == {"k3"}
        assert reopened.stats.skipped_tail == 0
        reopened.close()

    def test_missing_final_newline_is_repaired_not_glued(self, tmp_path):
        # A cut that ate only the record's newline leaves it decodable;
        # recovery must restore the newline so the next append starts a
        # fresh line instead of merging with it.
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        journal.close()
        raw = journal.journal_path.read_bytes()
        journal.journal_path.write_bytes(raw.rstrip(b"\n"))
        recovered = _journal(tmp_path)
        assert set(recovered.open_submissions) == {"k1"}
        assert recovered.record_submit("k2", "sid-2", SPECS, 0)
        recovered.close()
        reopened = _journal(tmp_path)
        assert set(reopened.open_submissions) == {"k1", "k2"}
        reopened.close()

    def test_failed_append_rolls_back_the_open_set(self, tmp_path):
        # If the durable append fails (ENOSPC stand-in: a dead handle),
        # the in-memory open set must not drift from the disk: a key
        # left open with nothing journaled would dedupe the client's
        # retry of the never-acked submission and lose it in a crash.
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        journal._handle.close()  # every write now raises
        with pytest.raises(ValueError):
            journal.record_submit("k2", "sid-2", SPECS, 0)
        assert "k2" not in journal.open_submissions
        with pytest.raises(ValueError):
            journal.record_done("k1")
        assert "k1" in journal.open_submissions
        reopened = _journal(tmp_path)
        assert set(reopened.open_submissions) == {"k1"}
        reopened.close()

    def test_checkpoint_compacts_the_log(self, tmp_path):
        journal = _journal(tmp_path, checkpoint_every=4)
        for index in range(2):
            journal.record_submit(f"k{index}", f"sid-{index}", SPECS, 0)
        journal.record_done("k0")
        journal.record_done("k1")  # 4th append -> automatic checkpoint
        assert journal.stats.checkpoints == 1
        assert journal.journal_path.read_bytes() == b""
        assert load_checkpoint(journal.checkpoint_path) == {}
        journal.record_submit("k9", "sid-9", SPECS, 0)
        journal.checkpoint()
        checkpointed = load_checkpoint(journal.checkpoint_path)
        assert set(checkpointed) == {"k9"}
        journal.close()
        assert _journal(tmp_path).depth == 1

    def test_crash_between_checkpoint_and_truncate_is_idempotent(
            self, tmp_path):
        # Simulate the worst compaction crash: the checkpoint landed but
        # the journal truncation did not, so every folded record is
        # still in the log.  Replay must fold them onto the checkpoint
        # as no-ops.
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        journal.record_submit("k2", "sid-2", SPECS, 0)
        journal.record_done("k1")
        raw = journal.journal_path.read_bytes()
        journal.checkpoint()
        journal.close()
        journal.journal_path.write_bytes(raw)  # un-truncate: the "crash"
        reopened = _journal(tmp_path)
        assert set(reopened.open_submissions) == {"k2"}
        reopened.close()

    def test_damaged_checkpoint_is_fatal(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        journal.checkpoint()
        journal.close()
        journal.checkpoint_path.write_text("{not json")
        with pytest.raises(JournalError, match="unreadable checkpoint"):
            _journal(tmp_path)

    def test_status_is_json_able(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("k1", "sid-1", SPECS, 0)
        snapshot = journal.status()
        assert snapshot["enabled"] is True
        assert snapshot["depth"] == 1
        json.dumps(snapshot)
        journal.close()
