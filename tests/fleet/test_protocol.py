"""Wire framing and declarative job specs."""

import pytest

from repro.core import BBConfig
from repro.errors import ProtocolError
from repro.fleet import protocol
from repro.runner import SimJob
from repro.workloads import opensource_tv_workload


class TestFrames:
    def test_roundtrip(self):
        message = {"op": "submit", "id": "s0", "jobs": [{"kind": "boot"}]}
        line = protocol.encode_frame(message)
        assert line.endswith(b"\n")
        assert protocol.decode_frame(line) == message

    def test_frames_are_single_lines(self):
        line = protocol.encode_frame({"a": "multi\nline? no", "b": 1})
        assert line.count(b"\n") == 1
        assert protocol.decode_frame(line)["a"] == "multi\nline? no"

    @pytest.mark.parametrize("junk", [b"not json\n", b"[1, 2]\n", b'"str"\n'])
    def test_bad_frames_raise(self, junk):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(junk)

    def test_oversized_frame_rejected(self):
        line = b"x" * (protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_frame(line)

    def test_payload_roundtrip(self):
        blob = bytes(range(256))
        assert protocol.decode_payload(protocol.encode_payload(blob)) == blob

    def test_corrupt_payload_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_payload("@@@not-base64@@@")


class TestJobSpecs:
    def test_default_spec_is_a_full_bb_tv_boot(self):
        job, repeat = protocol.job_from_spec({})
        assert repeat == 1
        expected = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        assert job.fingerprint() == expected.fingerprint()

    def test_spec_resolves_workload_bb_fault_and_repeat(self):
        job, repeat = protocol.job_from_spec({
            "kind": "boot", "workload": "camera", "bb": "none",
            "fault": {"preset": "flaky-services", "seed": 7}, "repeat": 5})
        assert repeat == 5
        assert job.fault_plan is not None
        assert not job.bb.preparser

    def test_feature_list_bb(self):
        job, _ = protocol.job_from_spec({"bb": ["preparser"]})
        assert job.bb.preparser
        assert not job.bb.deferred_meminit

    def test_spec_fingerprint_matches_direct_job(self):
        spec = {"workload": "phone", "bb": "full", "cores": 2}
        job, _ = protocol.job_from_spec(spec)
        from repro.workloads import phone_workload
        direct = SimJob.boot(phone_workload, bb=BBConfig.full(), cores=2)
        assert job.fingerprint() == direct.fingerprint()

    @pytest.mark.parametrize("spec, match", [
        ({"workload": "toaster"}, "unknown workload"),
        ({"kind": "reboot"}, "unknown job kind"),
        ({"typo_key": 1}, "unknown job spec keys"),
        ({"repeat": 0}, "repeat"),
        ({"repeat": "many"}, "repeat"),
        ({"cores": -1}, "cores"),
        ({"bb": 42}, "bad 'bb'"),
        ({"bb": ["warp_drive"]}, "unknown BB feature"),
        ({"fault": {"seed": 3}}, "bad 'fault'"),
        ({"fault": {"preset": "nope"}}, "unknown fault preset"),
        ({"kind": "recover", "cores": 2}, "not supported"),
        ("not-a-dict", "must be an object"),
    ])
    def test_bad_specs_raise_protocol_errors(self, spec, match):
        with pytest.raises(ProtocolError, match=match):
            protocol.job_from_spec(spec)

    def test_workload_registry_is_the_shared_one(self):
        from repro.workloads import WORKLOAD_FACTORIES
        assert protocol.WORKLOAD_FACTORIES == WORKLOAD_FACTORIES


class TestSummaries:
    def test_boot_report_summary(self):
        from repro.runner import execute_job
        report = execute_job(SimJob.boot(opensource_tv_workload,
                                         bb=BBConfig.full()))
        summary = protocol.summarize_result(report)
        assert summary["type"] == type(report).__name__
        assert summary["boot_ms"] > 0
        assert summary["degraded"] is False

    def test_arbitrary_result_summary(self):
        assert protocol.summarize_result(object())["type"] == "object"
