"""Fleet degradation + recovery: retries, requeue, quarantine, resume.

Service-level companions to ``test_journal.py``: real sockets and real
shard children, but every fault is injected deterministically through
:class:`repro.faults.fleet.FleetFaultPlan` (worker kills, connection
cuts) or staged journal state, so each scenario replays exactly.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError, FleetError
from repro.faults.fleet import FleetFaultPlan
from repro.fleet import FleetClient, FleetService
from repro.fleet.client import RetryPolicy, backoff_schedule
from repro.fleet.journal import JobJournal
from repro.fleet.protocol import submission_key
from repro.fleet.resources import ResourcePolicy
from repro.runner.schedule import JobScheduler


def _spec(seed=1, **extra):
    spec = {"kind": "boot", "workload": "tv", "bb": "full",
            "fault": {"preset": "flaky-services", "seed": seed}}
    spec.update(extra)
    return spec


def _policy(**overrides):
    defaults = dict(min_workers=1, max_workers=2)
    defaults.update(overrides)
    return ResourcePolicy(**defaults)


async def _with_service(scenario, **service_kwargs):
    service_kwargs.setdefault("policy", _policy())
    service_kwargs.setdefault("port", 0)
    service = FleetService(**service_kwargs)
    host, port = await service.start()
    drained = False
    try:
        result = await scenario(service, host, port)
        await service.drain()
        drained = True
        return result
    finally:
        if not drained:
            await service.stop()


class TestBackoffSchedule:
    def test_deterministic_per_seed(self):
        assert backoff_schedule(6, seed=42) == backoff_schedule(6, seed=42)

    def test_different_seeds_differ(self):
        assert backoff_schedule(6, seed=1) != backoff_schedule(6, seed=2)

    def test_delays_respect_the_exponential_envelope(self):
        base, cap = 0.05, 2.0
        for attempt, delay in enumerate(backoff_schedule(10, base, cap, 3)):
            ceiling = min(cap, base * 2 ** attempt)
            assert ceiling * 0.5 <= delay < ceiling

    def test_bad_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            backoff_schedule(-1)
        with pytest.raises(ConfigurationError):
            backoff_schedule(3, base=0.0)
        with pytest.raises(ConfigurationError):
            backoff_schedule(3, cap=-1.0)

    def test_policy_delays_wrap_the_schedule(self):
        policy = RetryPolicy(retries=4, backoff_base=0.1, backoff_cap=1.0,
                             seed=9)
        assert policy.delays() == backoff_schedule(4, 0.1, 1.0, 9)

    def test_default_policy_decorrelates_clients(self):
        # seed=None derives the jitter from the per-client salt, so a
        # fleet of default-configured clients does not retry in
        # lockstep against a restarting service.
        policy = RetryPolicy(retries=4)
        assert (policy.delays("client-a:sub-0")
                != policy.delays("client-b:sub-0"))
        # ... while staying deterministic for a given client.
        assert (policy.delays("client-a:sub-0")
                == policy.delays("client-a:sub-0"))

    def test_explicit_seed_pins_the_schedule_across_clients(self):
        policy = RetryPolicy(retries=4, seed=9)
        assert (policy.delays("client-a") == policy.delays("client-b")
                == backoff_schedule(4, policy.backoff_base,
                                    policy.backoff_cap, 9))


class FakeJob:
    def __init__(self, key):
        self.key = key

    def fingerprint(self):
        return self.key


class TestSchedulerRequeue:
    def test_requeue_returns_an_inflight_fingerprint_to_its_band(self):
        scheduler = JobScheduler()
        scheduler.submit("c1", FakeJob("f1"), priority=1)
        batch = scheduler.next_batch(4)
        assert [fp for fp, _ in batch] == ["f1"]
        assert scheduler.inflight == 1
        assert scheduler.requeue("f1")
        assert scheduler.inflight == 0
        assert scheduler.queued == 1
        assert scheduler.stats.requeued == 1
        # The fingerprint dispatches again, and completion still reaches
        # the original waiter.
        assert [fp for fp, _ in scheduler.next_batch(4)] == ["f1"]
        scheduler.complete("f1", "result")
        tickets = scheduler.drain("c1")
        assert [ticket.result for ticket in tickets] == ["result"]

    def test_requeue_of_unknown_or_queued_fingerprint_is_a_noop(self):
        scheduler = JobScheduler()
        assert not scheduler.requeue("missing")
        scheduler.submit("c1", FakeJob("f1"))
        assert not scheduler.requeue("f1")  # queued, not inflight
        assert scheduler.stats.requeued == 0


class TestShardCrashRecovery:
    def test_killed_shard_is_replaced_and_the_batch_requeued(self):
        chaos = FleetFaultPlan(seed=5, kill_worker_batches=(1,))

        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                outcome = await client.submit([_spec(seed=s)
                                               for s in range(3)])
            return outcome, service.status()

        outcome, status = asyncio.run(_with_service(
            scenario, chaos=chaos, max_job_retries=2))
        assert outcome.ok
        assert len(outcome.payloads) == 3
        assert status["resilience"]["shards_replaced"] >= 1
        assert status["resilience"]["chaos_worker_kills"] >= 1
        assert status["scheduler"]["requeued"] >= 1
        assert status["resilience"]["quarantined"] == 0

    def test_repeat_killer_is_quarantined_with_a_diagnosis(self):
        # Every dispatch dies, so the lone job exhausts its one retry
        # and must come back as a diagnosed error, not a hung client.
        chaos = FleetFaultPlan(seed=5, kill_worker_rate=1.0)

        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                first = await client.submit([_spec(seed=0)])
                replaced_after_first = service.pool.replaced
                second = await client.submit([_spec(seed=0)])
            return first, second, replaced_after_first, service

        first, second, replaced_after_first, service = asyncio.run(
            _with_service(scenario, chaos=chaos, max_job_retries=1))
        assert not first.ok
        assert "quarantined" in first.errors[0]
        assert "retry budget" in first.errors[0]
        # The resubmission is refused straight from the quarantine map —
        # no further shard is sacrificed to a known killer.
        assert not second.ok
        assert "quarantined" in second.errors[0]
        assert service.pool.replaced == replaced_after_first
        assert len(service.quarantined) == 1


class TestConnectionDropRetry:
    def test_submit_with_retry_rides_out_a_server_side_cut(self):
        # The server aborts the first connection before its first frame
        # (the ack), exactly once; the retry path must reconnect and
        # complete the identical submission.
        chaos = FleetFaultPlan(seed=5, drop_connection_after_frames=1)

        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                policy = RetryPolicy(retries=4, backoff_base=0.01, seed=2)
                outcome = await client.submit_with_retry(
                    [_spec(seed=s) for s in range(2)], policy=policy)
            return outcome, service.status()

        outcome, status = asyncio.run(_with_service(scenario, chaos=chaos))
        assert outcome.ok
        assert outcome.attempts >= 2
        assert status["resilience"]["chaos_connection_drops"] == 1

    def test_read_timeout_surfaces_as_fleet_error(self):
        async def scenario():
            async def silent(reader, writer):
                await asyncio.sleep(30)

            server = await asyncio.start_server(silent, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = FleetClient("127.0.0.1", port, read_timeout=0.2)
            await client.connect()
            try:
                with pytest.raises(FleetError, match="timed out"):
                    await client.status()
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())


class TestJournalWiring:
    def test_submission_is_journaled_then_marked_done(self, tmp_path):
        journal_dir = tmp_path / "journal"

        async def scenario(service, host, port):
            assert service.journal is not None
            async with FleetClient(host, port) as client:
                outcome = await client.submit([_spec(seed=0)])
            return outcome, service.journal.stats.appended

        outcome, appended = asyncio.run(_with_service(
            scenario, journal_dir=str(journal_dir)))
        assert outcome.ok
        assert appended == 2  # one submit + one done
        reopened = JobJournal(journal_dir)
        assert reopened.depth == 0
        reopened.close()

    def test_open_journal_entries_are_resumed_on_start(self, tmp_path):
        journal_dir = tmp_path / "journal"
        specs = [_spec(seed=0), _spec(seed=1)]
        staged = JobJournal(journal_dir)
        key = submission_key("sub-crashed", specs, 0)
        staged.record_submit(key, "sub-crashed", specs, 0)
        staged.close()

        async def scenario(service, host, port):
            assert service.resumed_total == 1
            for _ in range(500):
                if service.resumed_done == 1:
                    break
                await asyncio.sleep(0.02)
            status = service.status()
            assert status["journal"]["resumed"] == 1
            assert status["journal"]["resumed_done"] == 1
            return service.journal.depth

        depth = asyncio.run(_with_service(
            scenario, journal_dir=str(journal_dir)))
        assert depth == 0  # recovery recorded its own done

    def test_shared_journal_key_waits_for_every_holder(self, tmp_path):
        # Two identical (sid, specs, priority) triples from different
        # connections collapse to one journal content key.  The first
        # client walking away must release its hold, not close the
        # entry — the other client's still-undelivered submission keeps
        # its crash coverage until the last holder is done.
        journal_dir = tmp_path / "journal"

        async def scenario(service, host, port):
            specs = [_spec(seed=0)]
            key = submission_key("shared", specs, 0)
            service._journal_retain(key)
            service.journal.record_submit(key, "shared", specs, 0)
            service._journal_retain(key)   # second conn, same triple
            service._journal_release(key)  # first client disconnects
            depth_while_held = service.journal.depth
            service._journal_release(key)  # last holder completes
            return depth_while_held, service.journal.depth

        held, after = asyncio.run(_with_service(
            scenario, journal_dir=str(journal_dir)))
        assert held == 1  # the entry survived the first disconnect
        assert after == 0

    def test_unresolvable_journal_entries_are_closed_not_fatal(
            self, tmp_path):
        journal_dir = tmp_path / "journal"
        staged = JobJournal(journal_dir)
        staged.record_submit("bad", "sub-bad",
                             [{"workload": "no-such-workload"}], 0)
        staged.close()

        async def scenario(service, host, port):
            return service.resumed_total, service.journal.depth

        resumed, depth = asyncio.run(_with_service(
            scenario, journal_dir=str(journal_dir)))
        assert resumed == 0
        assert depth == 0
