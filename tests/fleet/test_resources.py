"""/proc sampling and the auto-scale policy."""

import os

import pytest

from repro.fleet.resources import (
    ProcessSampler,
    ResourcePolicy,
    ResourceSample,
    _read_cpu_ticks,
    _read_rss_bytes,
)


def _sample(cpu=None, rss=None, pid=1):
    return ResourceSample(pid=pid, cpu_percent=cpu, rss_bytes=rss)


class TestProcReaders:
    def test_own_process_is_readable(self):
        pid = os.getpid()
        ticks = _read_cpu_ticks(pid)
        rss = _read_rss_bytes(pid)
        assert ticks is not None and ticks >= 0
        assert rss is not None and rss > 0

    def test_dead_pid_degrades_to_none(self):
        # pid 0 has no /proc entry on Linux; nonexistent anywhere else.
        assert _read_cpu_ticks(0) is None
        assert _read_rss_bytes(0) is None


class TestProcessSampler:
    def test_first_sample_has_no_cpu_percent(self):
        sampler = ProcessSampler(os.getpid())
        first = sampler.sample()
        assert first.cpu_percent is None
        assert first.rss_bytes is not None

    def test_second_sample_reports_cpu_share(self):
        sampler = ProcessSampler(os.getpid())
        sampler.sample()
        # Burn a little CPU so the jiffy delta is observable (or zero —
        # either way the second sample must be a non-negative float).
        sum(i * i for i in range(200_000))
        second = sampler.sample()
        assert second.cpu_percent is not None
        assert second.cpu_percent >= 0.0

    def test_dead_pid_sampler_stays_none(self):
        sampler = ProcessSampler(0)
        assert sampler.sample().cpu_percent is None
        assert sampler.sample().cpu_percent is None


class TestResourcePolicy:
    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            ResourcePolicy(min_workers=0)
        with pytest.raises(ValueError, match="min_workers"):
            ResourcePolicy(min_workers=4, max_workers=2)

    def test_backlog_grows_one_step(self):
        policy = ResourcePolicy(min_workers=1, max_workers=4)
        # backlog 5 > 2 workers * 2 per-worker -> grow by exactly one
        assert policy.target_workers(2, backlog=5, samples=[]) == 3

    def test_growth_caps_at_max(self):
        policy = ResourcePolicy(min_workers=1, max_workers=2)
        assert policy.target_workers(2, backlog=100, samples=[]) == 2

    def test_idle_shrinks_one_step_to_min(self):
        policy = ResourcePolicy(min_workers=1, max_workers=4)
        assert policy.target_workers(3, backlog=0, samples=[]) == 2
        assert policy.target_workers(1, backlog=0, samples=[]) == 1

    def test_moderate_backlog_holds_steady(self):
        policy = ResourcePolicy(min_workers=1, max_workers=4)
        # backlog 3 <= 2 workers * 2 per-worker -> no change
        assert policy.target_workers(2, backlog=3, samples=[]) == 2

    def test_rss_brake_shrinks_despite_backlog(self):
        policy = ResourcePolicy(min_workers=1, max_workers=4,
                                max_rss_bytes=100)
        samples = [_sample(rss=80), _sample(rss=80)]
        assert policy.overloaded(samples)
        assert policy.target_workers(2, backlog=100, samples=samples) == 1

    def test_cpu_brake_uses_mean_share(self):
        policy = ResourcePolicy(min_workers=1, max_workers=4,
                                max_cpu_percent=90.0)
        hot = [_sample(cpu=99.0), _sample(cpu=95.0)]
        cool = [_sample(cpu=99.0), _sample(cpu=10.0)]  # mean 54.5
        assert policy.overloaded(hot)
        assert not policy.overloaded(cool)

    def test_none_samples_do_not_trip_brakes(self):
        policy = ResourcePolicy(max_rss_bytes=1, max_cpu_percent=1.0)
        assert not policy.overloaded([_sample(), _sample()])
