"""End-to-end service tests: real sockets, real shard children.

pytest-asyncio is not available here, so every test is a sync function
wrapping its scenario in ``asyncio.run``.  Jobs are fast TV boots varied
through the fault-plan seed, and every service binds port 0.
"""

import asyncio

from repro.fleet import FleetClient, FleetService
from repro.fleet.protocol import job_from_spec
from repro.fleet.resources import ResourcePolicy
from repro.runner import execute_job
from repro.runner.branch import canonical_bytes


def _spec(seed=1, **extra):
    """A cheap boot spec; distinct seeds give distinct fingerprints."""
    spec = {"kind": "boot", "workload": "tv", "bb": "full",
            "fault": {"preset": "flaky-services", "seed": seed}}
    spec.update(extra)
    return spec


def _policy(**overrides):
    defaults = dict(min_workers=1, max_workers=2)
    defaults.update(overrides)
    return ResourcePolicy(**defaults)


async def _with_service(scenario, **service_kwargs):
    service_kwargs.setdefault("policy", _policy())
    service_kwargs.setdefault("port", 0)
    service = FleetService(**service_kwargs)
    host, port = await service.start()
    drained = False
    try:
        result = await scenario(service, host, port)
        await service.drain()
        drained = True
        return result
    finally:
        if not drained:
            await service.stop()


class TestSubmitStream:
    def test_submission_streams_ack_results_done(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                events = []
                async for event in client.stream([_spec(seed=0)]):
                    events.append(event["event"])
                return events

        events = asyncio.run(_with_service(scenario))
        assert events[0] == "ack"
        assert events[-1] == "done"
        assert "result" in events

    def test_payloads_match_serial_execution(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                return await client.submit(
                    [_spec(seed=seed) for seed in range(3)])

        outcome = asyncio.run(_with_service(scenario))
        assert outcome.ok and outcome.total == 3
        for seed, payload in enumerate(outcome.payloads):
            job, _ = job_from_spec(_spec(seed=seed))
            assert payload == canonical_bytes(execute_job(job))

    def test_repeat_expansion_and_payload_ref_dedup(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                raw = []
                async for event in client.stream([_spec(seed=0, repeat=5)]):
                    raw.append(event)
                return raw

        raw = asyncio.run(_with_service(scenario))
        results = [e for e in raw if e["event"] == "result"]
        assert len(results) == 5
        # One identical boot -> one payload on the wire, four references.
        assert len([e for e in results if "payload" in e]) == 1
        assert len([e for e in results if "payload_ref" in e]) == 4
        assert len({e["fingerprint"] for e in results}) == 1

    def test_resubmission_hits_the_cache(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                first = await client.submit([_spec(seed=0)])
                second = await client.submit([_spec(seed=0)])
                return first, second

        first, second = asyncio.run(_with_service(scenario))
        assert first.ok and second.ok
        assert first.cached == [False]
        assert second.cached == [True]
        assert first.payloads == second.payloads

    def test_two_clients_get_identical_bytes(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as a:
                async with FleetClient(host, port) as b:
                    one, two = await asyncio.gather(
                        a.submit([_spec(seed=0)]),
                        b.submit([_spec(seed=0)]))
                    return one, two

        one, two = asyncio.run(_with_service(scenario))
        assert one.ok and two.ok
        assert one.payloads == two.payloads


class TestProtocolErrors:
    def test_bad_spec_streams_an_error_event(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                return await client.submit([{"workload": "toaster"}])

        outcome = asyncio.run(_with_service(scenario))
        assert not outcome.ok
        assert any("unknown workload" in err
                   for err in outcome.errors.values())

    def test_unknown_op_is_reported_not_fatal(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                await client._send({"op": "teleport", "id": "x"})
                event = await client._read_event()
                # The connection survives for real work afterwards.
                outcome = await client.submit([_spec(seed=0)])
                return event, outcome

        event, outcome = asyncio.run(_with_service(scenario))
        assert event["event"] == "error"
        assert "unknown op" in event["message"]
        assert outcome.ok


class TestStatusAndDrain:
    def test_status_reports_scheduler_and_pool(self):
        async def scenario(service, host, port):
            async with FleetClient(host, port) as client:
                await client.submit([_spec(seed=0, repeat=3)])
                return await client.status()

        status = asyncio.run(_with_service(scenario))
        assert status["event"] == "status"
        assert status["scheduler"]["submitted"] == 3
        assert status["scheduler"]["delivered"] == 3
        assert status["pool"]["workers"] >= 1
        assert status["workers"]  # at least one shard row

    def test_drain_rejects_new_submissions(self):
        async def scenario():
            service = FleetService(port=0, policy=_policy())
            host, port = await service.start()
            try:
                async with FleetClient(host, port) as client:
                    service.draining = True  # a drain is in progress
                    return await client.submit([_spec(seed=0)])
            finally:
                await service.stop()

        outcome = asyncio.run(scenario())
        assert not outcome.ok
        assert any("draining" in err for err in outcome.errors.values())

    def test_remote_drain_op(self):
        async def scenario():
            service = FleetService(port=0, policy=_policy())
            host, port = await service.start()
            try:
                async with FleetClient(host, port) as client:
                    await client.submit([_spec(seed=0)])
                    ack = await client.request_drain()
                await service.serve_forever()  # returns once drained
                return ack, service.draining
            finally:
                if not service.draining:
                    await service.stop()

        ack, draining = asyncio.run(scenario())
        assert ack["event"] == "draining"
        assert draining
