"""The `repro generations` command family end to end."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    output = capsys.readouterr().out
    return code, output


@pytest.fixture
def store_dir(tmp_path, capsys):
    path = str(tmp_path / "gens")
    code, output = run_cli(capsys, "generations", "init", "--store", path)
    assert code == 0
    assert "initialized" in output
    return path


def test_init_refuses_existing_store(store_dir, capsys):
    with pytest.raises(SystemExit, match="already initialized"):
        main(["generations", "init", "--store", store_dir])


def test_commit_log_diff_rollback_lifecycle(store_dir, capsys):
    code, output = run_cli(capsys, "generations", "commit",
                           "--store", store_dir, "--label", "gen-1")
    assert code == 0
    assert "[main " in output and "gen-1" in output

    code, output = run_cli(capsys, "generations", "commit",
                           "--store", store_dir, "--label", "gen-2",
                           "--features", "preparser,rcu_booster",
                           "--notes", "lean build")
    assert code == 0

    code, output = run_cli(capsys, "generations", "log",
                           "--store", store_dir)
    assert code == 0
    assert output.index("gen-2") < output.index("gen-1")
    assert "# lean build" in output

    # Head-vs-parent diff needs no arguments.
    code, output = run_cli(capsys, "generations", "diff",
                           "--store", store_dir)
    assert code == 0
    assert "features" in output and "label" in output

    code, output = run_cli(capsys, "generations", "rollback",
                           "--store", store_dir)
    assert code == 0
    assert "rolled 'main' back from gen-2" in output

    code, output = run_cli(capsys, "generations", "log",
                           "--store", store_dir)
    assert code == 0
    assert "gen-2" not in output


def test_commit_requires_initialized_store(tmp_path):
    with pytest.raises(SystemExit, match="no generation store"):
        main(["generations", "commit", "--store",
              str(tmp_path / "missing"), "--label", "x"])


def test_commit_unknown_feature_exits(store_dir):
    with pytest.raises(SystemExit, match="unknown BB feature"):
        main(["generations", "commit", "--store", store_dir,
              "--label", "bad", "--features", "warp_drive"])


def test_diff_of_rootless_head_exits(store_dir, capsys):
    run_cli(capsys, "generations", "commit", "--store", store_dir,
            "--label", "root")
    with pytest.raises(SystemExit, match="no parent"):
        main(["generations", "diff", "--store", store_dir])


@pytest.mark.slow
def test_rollout_demo_regressed_expect_rollbacks(capsys):
    code, output = run_cli(capsys, "generations", "rollout",
                           "--demo", "regressed",
                           "--expect-rollbacks", "4")
    assert code == 0
    assert "HALTED" in output
    assert "4/4 rollbacks verified" in output


@pytest.mark.slow
def test_rollout_expectation_mismatch_exits_one(capsys):
    code, output = run_cli(capsys, "generations", "rollout",
                           "--demo", "clean", "--devices", "6",
                           "--waves", "2", "--expect-rollbacks", "1")
    assert code == 1
    assert "expected exactly 1 rollbacks, observed 0" in output


@pytest.mark.slow
def test_rollout_json_report(capsys):
    code, output = run_cli(capsys, "generations", "rollout",
                           "--demo", "clean", "--devices", "6",
                           "--waves", "2", "--json")
    assert code == 0
    report = json.loads(output)
    assert report["rollbacks"] == 0
    assert report["devices_updated"] == 6


def test_rollout_without_store_or_demo_exits():
    with pytest.raises(SystemExit, match="--demo"):
        main(["generations", "rollout"])
