"""Mutation tests of the OTA health gate: plant a defect, demand the
rollback; ship a clean update, demand silence.

These are the campaign engine's "does the alarm actually ring" tests:
a generation with a regressed feature set or a broken boot-critical unit
must be detected and every updated device rolled back to the baseline,
while a byte-for-byte-equivalent clean release must produce *zero*
rollbacks (no false positives).  Rollout reports are canonical bytes, so
determinism across worker counts and execution tiers is asserted
directly.
"""

import pytest

from repro.generations import (VERDICT_HEALTHY, VERDICT_REGRESSION,
                               VERDICT_STAGE_FAILED, VERDICT_UNIT_FAILURE,
                               canonical_report_bytes, demo_store,
                               draw_update_fault, partition_waves,
                               run_rollout)


def _rollout(tmp_path, kind, **kwargs):
    store = demo_store(tmp_path / kind, kind)
    return run_rollout(store, **kwargs)


def _verdicts(report):
    merged = {}
    for wave in report["waves"]:
        for verdict, count in wave["verdicts"].items():
            merged[verdict] = merged.get(verdict, 0) + count
    return merged


class TestPlantedRegression:
    def test_boot_time_regression_detected_and_rolled_back(self, tmp_path):
        """gen-2 drops the preparser and deferred executor (~24% slower,
        past the 1.10x gate): every updated device must roll back and the
        campaign must halt after the first wave."""
        report = _rollout(tmp_path, "regressed")
        assert report["rollbacks"] == 4  # one full wave of 12/3 devices
        assert report["devices_updated"] == 0
        assert report["halted_after"] == 0
        assert _verdicts(report) == {VERDICT_REGRESSION: 4}

    def test_every_rollback_verified_by_recovery_ladder(self, tmp_path):
        report = _rollout(tmp_path, "regressed")
        for wave in report["waves"]:
            assert wave["rollbacks_verified"] == wave["rollbacks"]

    def test_broken_unit_detected_and_rolled_back(self, tmp_path):
        """gen-2 shipping a broken boot-critical unit fails health
        outright (degraded boot), same rollback path."""
        report = _rollout(tmp_path, "broken")
        assert report["rollbacks"] == 4
        assert report["devices_updated"] == 0
        assert _verdicts(report) == {VERDICT_UNIT_FAILURE: 4}
        for wave in report["waves"]:
            assert wave["rollbacks_verified"] == wave["rollbacks"]

    def test_all_devices_end_on_baseline(self, tmp_path):
        report = _rollout(tmp_path, "regressed")
        baseline = report["baseline"]
        for state in report["device_states"].values():
            slots = (state["slot_a"], state["slot_b"])
            assert slots[{"a": 0, "b": 1}[state["active"]]] == baseline
            assert state["known_good"] == baseline


class TestCleanUpdate:
    def test_zero_false_positives(self, tmp_path):
        """An update with an unchanged boot profile sails through: every
        device updates, nothing rolls back, nothing halts."""
        report = _rollout(tmp_path, "clean")
        assert report["rollbacks"] == 0
        assert report["devices_updated"] == report["devices"]
        assert report["halted_after"] is None
        assert _verdicts(report) == {VERDICT_HEALTHY: report["devices"]}

    def test_clean_devices_confirm_the_new_generation(self, tmp_path):
        report = _rollout(tmp_path, "clean")
        target = report["target"]
        for state in report["device_states"].values():
            assert state["known_good"] == target
            assert state["trial"] is None


class TestUpdateFaults:
    def test_interrupted_flash_skips_the_boot(self, tmp_path):
        """flash_rate=1: every flash is interrupted, no device ever
        boots the target, and the old slot keeps running."""
        report = _rollout(tmp_path, "clean", flash_rate=1.0, update_seed=3)
        assert _verdicts(report) == {
            VERDICT_STAGE_FAILED: report["devices"]}
        assert report["rollbacks"] == 0
        baseline = report["baseline"]
        for state in report["device_states"].values():
            assert state["known_good"] == baseline

    def test_corrupt_image_rolls_back(self, tmp_path):
        """corrupt_rate=1 on a clean release: the flashed bytes are bad,
        the trial boot degrades, and the gate must roll back anyway."""
        report = _rollout(tmp_path, "clean", corrupt_rate=1.0,
                          update_seed=3, halt_threshold=1.1)
        verdicts = _verdicts(report)
        assert verdicts.get(VERDICT_HEALTHY, 0) == 0
        assert report["rollbacks"] == report["devices"]

    def test_fault_draws_are_per_device_deterministic(self):
        first = draw_update_fault(seed=9, device="dev-004",
                                  flash_rate=0.3, corrupt_rate=0.3)
        again = draw_update_fault(seed=9, device="dev-004",
                                  flash_rate=0.3, corrupt_rate=0.3)
        assert first == again
        assert draw_update_fault(seed=9, device="dev-005",
                                 flash_rate=0.0, corrupt_rate=0.0) is None


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["regressed", "clean"])
    def test_jobs_1_equals_jobs_2(self, tmp_path, kind):
        serial = _rollout(tmp_path / "j1", kind, jobs=1)
        threaded = _rollout(tmp_path / "j2", kind, jobs=2)
        assert (canonical_report_bytes(serial)
                == canonical_report_bytes(threaded))

    def test_serial_equals_fleet(self, tmp_path):
        serial = _rollout(tmp_path / "s", "regressed")
        fleet = _rollout(tmp_path / "f", "regressed", use_fleet=True,
                         jobs=2)
        assert (canonical_report_bytes(serial)
                == canonical_report_bytes(fleet))

    def test_waves_partition_every_device_exactly_once(self):
        from repro.generations import device_ids

        for devices, waves in ((12, 3), (7, 3), (5, 8)):
            fleet = device_ids(devices)
            parts = partition_waves(fleet, waves)
            assert [d for wave in parts for d in wave] == fleet
