"""GenerationStore: content addressing, fast-forward history, tamper
detection, and the ``rollback(commit(g)) == g`` round-trip."""

import json

import pytest

from repro.errors import GenerationError
from repro.generations import (Generation, GenerationStore,
                               diff_generations)


@pytest.fixture
def store(tmp_path):
    return GenerationStore.init(tmp_path / "store")


def _gen(label="gen-1", parent=None, **overrides):
    defaults = dict(workload="tv", features=("preparser", "rcu_booster"))
    defaults.update(overrides)
    return Generation(label=label, parent=parent, **defaults)


class TestGeneration:
    def test_fingerprint_is_content_address(self):
        a, b = _gen(), _gen()
        assert a.fingerprint() == b.fingerprint()
        assert _gen(notes="hotfix").fingerprint() != a.fingerprint()

    def test_features_normalized_sorted_deduped(self):
        generation = Generation(label="g", features=(
            "rcu_booster", "preparser", "rcu_booster"))
        assert generation.features == ("preparser", "rcu_booster")

    def test_document_round_trip(self):
        generation = _gen(fault=("flaky-services", 7), cores=2,
                          notes="planted")
        assert Generation.from_dict(generation.to_dict()) == generation

    def test_unknown_workload_rejected_at_construction(self):
        with pytest.raises(GenerationError, match="unknown workload"):
            _gen(workload="toaster")

    def test_unknown_feature_rejected_at_construction(self):
        with pytest.raises(GenerationError, match="unknown BB feature"):
            _gen(features=("warp_drive",))

    def test_unknown_fault_preset_rejected_at_construction(self):
        with pytest.raises(GenerationError, match="unknown fault preset"):
            _gen(fault=("no-such-preset", 0))

    def test_bb_config_matches_features(self):
        generation = _gen(features=("preparser",))
        assert generation.bb().enabled_features() == ["preparser"]

    def test_boot_spec_is_fleet_compatible(self):
        from repro.fleet.protocol import job_from_spec

        job, repeat = job_from_spec(_gen().boot_spec())
        assert repeat == 1
        assert job.kind == "boot"


class TestStoreHistory:
    def test_init_refuses_to_clobber(self, store):
        with pytest.raises(GenerationError, match="already initialized"):
            GenerationStore.init(store.root)

    def test_operations_require_initialized_store(self, tmp_path):
        bare = GenerationStore(tmp_path / "nowhere")
        with pytest.raises(GenerationError, match="no generation store"):
            bare.commit(_gen())

    def test_commit_rollback_round_trip(self, store):
        generation = _gen()
        fingerprint = store.commit(generation)
        assert store.head() == fingerprint
        assert store.rollback() == generation
        assert store.head() is None
        # The popped object survives in the store, git-style.
        assert store.get(fingerprint) == generation

    def test_commit_requires_fast_forward(self, store):
        store.commit(_gen("gen-1"))
        with pytest.raises(GenerationError, match="non-fast-forward"):
            store.commit(_gen("gen-2", parent=None))

    def test_empty_commit_rejected(self, store):
        """Re-committing the head's exact profile changes nothing and is
        refused; a re-release with so much as a new label is fine."""
        generation = _gen("gen-1")
        head = store.commit(generation)
        with pytest.raises(GenerationError, match="empty commit"):
            store.commit(generation.with_parent(head))
        assert store.head() == head
        store.commit(_gen("gen-1-rebuild", parent=head, notes="rebuilt"))

    def test_log_walks_newest_first(self, store):
        first = _gen("gen-1")
        head = store.commit(first)
        second = _gen("gen-2", parent=head, features=("preparser",))
        store.commit(second)
        assert [g.label for g in store.log()] == ["gen-2", "gen-1"]

    def test_refs_are_independent(self, store):
        main_head = store.commit(_gen("gen-1"))
        beta_head = store.commit(_gen("beta-1", notes="beta"), ref="beta")
        assert store.refs() == {"beta": beta_head, "main": main_head}
        store.rollback(ref="beta")
        assert store.refs() == {"main": main_head}

    def test_resolve_prefix_and_ref(self, store):
        head = store.commit(_gen())
        assert store.resolve("main") == head
        assert store.resolve(head[:10]) == head
        with pytest.raises(GenerationError, match="cannot resolve"):
            store.resolve("feedface")

    def test_rollback_of_unborn_ref_fails(self, store):
        with pytest.raises(GenerationError, match="no generations"):
            store.rollback()


class TestTamperDetection:
    def test_edited_object_detected_on_read(self, store):
        fingerprint = store.commit(_gen())
        path = store.objects_dir / f"{fingerprint}.json"
        document = json.loads(path.read_bytes())
        document["notes"] = "silently different"
        path.write_text(json.dumps(document, sort_keys=True,
                                   separators=(",", ":")))
        with pytest.raises(GenerationError, match="tampered"):
            store.get(fingerprint)

    def test_corrupt_object_detected_on_read(self, store):
        fingerprint = store.commit(_gen())
        (store.objects_dir / f"{fingerprint}.json").write_text("{oops")
        with pytest.raises(GenerationError, match="corrupt"):
            store.get(fingerprint)

    def test_invalid_document_shape_rejected(self, store):
        fingerprint = store.commit(_gen())
        (store.objects_dir / f"{fingerprint}.json").write_text(
            '{"label": "x"}')
        with pytest.raises(GenerationError):
            store.get(fingerprint)


class TestDiff:
    def test_diff_names_exactly_the_changed_fields(self):
        old = _gen("gen-1")
        new = _gen("gen-2", parent=old.fingerprint(),
                   features=("preparser",))
        delta = diff_generations(old, new)
        assert set(delta) == {"label", "features", "parent"}
        assert delta["features"]["old"] == ["preparser", "rcu_booster"]
        assert delta["features"]["new"] == ["preparser"]

    def test_identical_generations_diff_empty(self):
        assert diff_generations(_gen(), _gen()) == {}


class TestCrashSafeRefs:
    def test_interrupted_refs_write_leaves_the_old_table_intact(
            self, store, monkeypatch):
        # A crash inside _save_refs (power cut between the temp write
        # and the rename) must leave refs.json exactly as it was —
        # the atomic-rename contract the journal also relies on.
        first = store.commit(_gen("gen-1"))
        before = store.refs_path.read_text(encoding="ascii")

        import os as os_module

        def exploding_replace(src, dst):
            raise OSError("simulated power cut before rename")

        monkeypatch.setattr(os_module, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated power cut"):
            store.commit(_gen("gen-2", parent=first))
        monkeypatch.undo()

        assert store.refs_path.read_text(encoding="ascii") == before
        assert store.resolve("main") == first
        # The store is not wedged: the retry lands normally.
        second = store.commit(_gen("gen-2", parent=first))
        assert store.resolve("main") == second

    def test_no_temp_file_is_left_behind(self, store):
        store.commit(_gen("gen-1"))
        leftovers = [p.name for p in store.root.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []
