"""Tests for the Service Analyzer."""

from repro.graph.analyzer import ServiceAnalyzer
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def analyze(units):
    return ServiceAnalyzer(UnitRegistry(units)).analyze()


def test_clean_registry_has_no_findings():
    report = analyze([
        Unit(name="a.service"),
        Unit(name="b.service", requires=["a.service"]),
    ])
    assert report.findings == []
    assert not report.has_errors
    assert report.summary() == "no findings"


def test_strong_cycle_detected():
    report = analyze([
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
    ])
    cycles = report.of_kind("cycle")
    assert len(cycles) == 1
    assert set(cycles[0].units) == {"a.service", "b.service"}
    assert report.has_errors


def test_weak_cycle_reported_as_ordering_cycle():
    report = analyze([
        Unit(name="a.service", wants=["b.service"]),
        Unit(name="b.service", wants=["a.service"]),
    ])
    assert len(report.of_kind("ordering-cycle")) == 1
    assert report.of_kind("cycle") == []
    assert not report.has_errors  # breakable, so a warning not an error


def test_contradicting_order_detected():
    report = analyze([
        Unit(name="a.service", before=["b.service"], after=["b.service"]),
        Unit(name="b.service"),
    ])
    contradictions = report.of_kind("contradiction")
    assert len(contradictions) == 1
    assert set(contradictions[0].units) == {"a.service", "b.service"}


def test_requires_plus_conflicts_detected():
    report = analyze([
        Unit(name="a.service", requires=["b.service"], conflicts=["b.service"]),
        Unit(name="b.service"),
    ])
    assert any("pulls in and conflicts" in f.detail
               for f in report.of_kind("contradiction"))


def test_dangling_requirement_detected():
    report = analyze([Unit(name="a.service", requires=["ghost.service"])])
    dangling = report.of_kind("dangling")
    assert len(dangling) == 1
    assert dangling[0].units == ("a.service", "ghost.service")
    assert report.has_errors


def test_duplicate_declaration_detected():
    report = analyze([
        Unit(name="a.service", after=["b.service", "b.service"]),
        Unit(name="b.service"),
    ])
    assert any("more than once" in f.detail for f in report.of_kind("redundant"))


def test_transitively_implied_requires_detected():
    report = analyze([
        Unit(name="a.service", requires=["b.service", "c.service"]),
        Unit(name="b.service", requires=["c.service"]),
        Unit(name="c.service"),
    ])
    redundant = report.of_kind("redundant")
    assert any(f.units == ("a.service", "c.service") for f in redundant)


def test_summary_formats_findings():
    report = analyze([Unit(name="a.service", requires=["ghost.service"])])
    assert "[dangling]" in report.summary()
    assert "a.service" in report.summary()
