"""Tests for the Service Analyzer."""

from repro.graph.analyzer import ServiceAnalyzer
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def analyze(units):
    return ServiceAnalyzer(UnitRegistry(units)).analyze()


def test_clean_registry_has_no_findings():
    report = analyze([
        Unit(name="a.service"),
        Unit(name="b.service", requires=["a.service"]),
    ])
    assert report.findings == []
    assert not report.has_errors
    assert report.summary() == "no findings"


def test_strong_cycle_detected():
    report = analyze([
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
    ])
    cycles = report.of_kind("cycle")
    assert len(cycles) == 1
    assert set(cycles[0].units) == {"a.service", "b.service"}
    assert report.has_errors


def test_weak_cycle_reported_as_ordering_cycle():
    report = analyze([
        Unit(name="a.service", wants=["b.service"]),
        Unit(name="b.service", wants=["a.service"]),
    ])
    assert len(report.of_kind("ordering-cycle")) == 1
    assert report.of_kind("cycle") == []
    assert not report.has_errors  # breakable, so a warning not an error


def test_contradicting_order_detected():
    report = analyze([
        Unit(name="a.service", before=["b.service"], after=["b.service"]),
        Unit(name="b.service"),
    ])
    contradictions = report.of_kind("contradiction")
    assert len(contradictions) == 1
    assert set(contradictions[0].units) == {"a.service", "b.service"}


def test_requires_plus_conflicts_detected():
    report = analyze([
        Unit(name="a.service", requires=["b.service"], conflicts=["b.service"]),
        Unit(name="b.service"),
    ])
    assert any("pulls in and conflicts" in f.detail
               for f in report.of_kind("contradiction"))


def test_dangling_requirement_detected():
    report = analyze([Unit(name="a.service", requires=["ghost.service"])])
    dangling = report.of_kind("dangling")
    assert len(dangling) == 1
    assert dangling[0].units == ("a.service", "ghost.service")
    assert report.has_errors


def test_duplicate_declaration_detected():
    report = analyze([
        Unit(name="a.service", after=["b.service", "b.service"]),
        Unit(name="b.service"),
    ])
    assert any("more than once" in f.detail for f in report.of_kind("redundant"))


def test_transitively_implied_requires_detected():
    report = analyze([
        Unit(name="a.service", requires=["b.service", "c.service"]),
        Unit(name="b.service", requires=["c.service"]),
        Unit(name="c.service"),
    ])
    redundant = report.of_kind("redundant")
    assert any(f.units == ("a.service", "c.service") for f in redundant)


def test_summary_formats_findings():
    report = analyze([Unit(name="a.service", requires=["ghost.service"])])
    assert "[dangling]" in report.summary()
    assert "a.service" in report.summary()


def test_three_node_strong_cycle_reported_once():
    report = analyze([
        Unit(name="a.service", after=["c.service"], requires=["c.service"]),
        Unit(name="b.service", requires=["a.service"]),
        Unit(name="c.service", requires=["b.service"]),
    ])
    cycles = report.of_kind("cycle")
    assert len(cycles) == 1
    assert set(cycles[0].units) == {"a.service", "b.service", "c.service"}


def test_strong_cycle_not_double_reported_as_ordering_cycle():
    report = analyze([
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
    ])
    assert len(report.of_kind("cycle")) == 1
    assert report.of_kind("ordering-cycle") == []


def test_mixed_cycle_with_weak_link_is_breakable():
    """Strong a->b plus weak b->a closes the loop only via the weak edge."""
    report = analyze([
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", wants=["a.service"]),
    ])
    assert report.of_kind("cycle") == []
    assert len(report.of_kind("ordering-cycle")) == 1
    assert not report.has_errors


def test_disjoint_cycles_each_reported():
    report = analyze([
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
        Unit(name="c.service", requires=["d.service"]),
        Unit(name="d.service", requires=["c.service"]),
    ])
    cycles = report.of_kind("cycle")
    assert {frozenset(c.units) for c in cycles} == {
        frozenset({"a.service", "b.service"}),
        frozenset({"c.service", "d.service"}),
    }


def test_wants_plus_conflicts_detected():
    report = analyze([
        Unit(name="a.service", wants=["b.service"], conflicts=["b.service"]),
        Unit(name="b.service"),
    ])
    assert any("pulls in and conflicts" in f.detail
               for f in report.of_kind("contradiction"))


def test_contradicting_order_reported_once_per_pair():
    """A before B declared by A and B after A... plus the reverse pair;
    the symmetric contradiction surfaces once, not once per direction."""
    report = analyze([
        Unit(name="a.service", before=["b.service"]),
        Unit(name="b.service", before=["a.service"]),
    ])
    contradictions = [f for f in report.of_kind("contradiction")
                      if set(f.units) == {"a.service", "b.service"}]
    assert len(contradictions) == 1


def test_deep_transitive_requires_chain_detected():
    report = analyze([
        Unit(name="a.service", requires=["b.service", "d.service"]),
        Unit(name="b.service", requires=["c.service"]),
        Unit(name="c.service", requires=["d.service"]),
        Unit(name="d.service"),
    ])
    redundant = report.of_kind("redundant")
    assert any(f.units == ("a.service", "d.service") for f in redundant)
    assert not report.has_errors  # redundancy is waste, not breakage


def test_of_kind_returns_empty_for_unknown_kind():
    report = analyze([Unit(name="a.service")])
    assert report.of_kind("no-such-kind") == []


def test_dangling_wants_is_also_reported():
    report = analyze([Unit(name="a.service", wants=["ghost.service"])])
    assert len(report.of_kind("dangling")) == 1


def test_mini_tv_fixture_is_clean():
    from tests.fixtures import mini_tv_registry
    from repro.graph.analyzer import ServiceAnalyzer
    report = ServiceAnalyzer(mini_tv_registry()).analyze()
    assert not report.has_errors, report.summary()
