"""Tests for critical-path analysis."""

import pytest

from repro.errors import AnalysisError
from repro.graph.critical_path import critical_path, estimate_start_ns
from repro.hw.presets import emmc_ue48h6200
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import SimCost, Unit
from repro.quantities import msec
from tests.fixtures import COMPLETION_UNITS, mini_tv_registry


def chain_registry():
    return UnitRegistry([
        Unit(name="a.service", cost=SimCost(init_cpu_ns=msec(10), exec_bytes=0)),
        Unit(name="b.service", requires=["a.service"],
             cost=SimCost(init_cpu_ns=msec(20), exec_bytes=0)),
        Unit(name="c.service", requires=["b.service"],
             cost=SimCost(init_cpu_ns=msec(30), exec_bytes=0)),
        Unit(name="side.service", cost=SimCost(init_cpu_ns=msec(500), exec_bytes=0)),
    ])


def test_critical_path_follows_the_chain():
    path = critical_path(chain_registry(), ["c.service"])
    assert path.units == ("a.service", "b.service", "c.service")


def test_side_services_do_not_count():
    """A heavy service off the completion closure does not affect the path."""
    path = critical_path(chain_registry(), ["c.service"])
    assert "side.service" not in path.units


def test_length_includes_fixed_costs():
    path = critical_path(chain_registry(), ["c.service"])
    # At least the three init CPU costs.
    assert path.length_ns >= msec(60)


def test_custom_duration_fn():
    path = critical_path(chain_registry(), ["c.service"],
                         duration_fn=lambda unit: msec(1))
    assert path.length_ns == msec(3)


def test_storage_model_adds_exec_read_time():
    registry = UnitRegistry([
        Unit(name="a.service", cost=SimCost(init_cpu_ns=0, exec_bytes=1024 * 1024)),
    ])
    without = critical_path(registry, ["a.service"]).length_ns
    with_storage = critical_path(registry, ["a.service"],
                                 storage=emmc_ue48h6200()).length_ns
    assert with_storage > without


def test_unknown_completion_unit_rejected():
    with pytest.raises(AnalysisError, match="not in registry"):
        critical_path(chain_registry(), ["ghost.service"])


def test_cycle_rejected():
    registry = UnitRegistry([
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
    ])
    with pytest.raises(AnalysisError, match="cycle"):
        critical_path(registry, ["a.service"])


def test_mini_tv_critical_path_ends_at_fasttv():
    path = critical_path(mini_tv_registry(), COMPLETION_UNITS,
                         storage=emmc_ue48h6200())
    assert path.units[-1] == "fasttv.service"
    assert "dbus.service" in path.units


def test_static_build_shortens_estimate():
    dynamic = Unit(name="a.service",
                   cost=SimCost(dynamic_link_ns=msec(5), exec_bytes=0))
    static = Unit(name="b.service", static_build=True,
                  cost=SimCost(dynamic_link_ns=msec(5), exec_bytes=0))
    assert estimate_start_ns(static) < estimate_start_ns(dynamic)


def test_estimate_sums_every_cost_component():
    unit = Unit(name="a.service", cost=SimCost(
        fork_ns=100, processes=3, init_cpu_ns=1_000, hw_settle_ns=10_000,
        dynamic_link_ns=500, ready_extra_ns=7, exec_bytes=0))
    assert estimate_start_ns(unit) == 3 * 100 + 1_000 + 10_000 + 500 + 7


def test_estimate_exec_read_uses_random_pattern():
    storage = emmc_ue48h6200()
    nbytes = 4 * 1024 * 1024
    unit = Unit(name="a.service", cost=SimCost(
        fork_ns=0, init_cpu_ns=0, dynamic_link_ns=0, exec_bytes=nbytes))
    from repro.hw.storage import AccessPattern
    expected = storage.read_time_ns(nbytes, AccessPattern.RANDOM)
    assert estimate_start_ns(unit, storage) == expected


def test_multi_goal_picks_the_costlier_chain():
    registry = UnitRegistry([
        Unit(name="cheap.service",
             cost=SimCost(init_cpu_ns=msec(1), exec_bytes=0)),
        Unit(name="deep1.service",
             cost=SimCost(init_cpu_ns=msec(40), exec_bytes=0)),
        Unit(name="deep2.service", requires=["deep1.service"],
             cost=SimCost(init_cpu_ns=msec(40), exec_bytes=0)),
    ])
    path = critical_path(registry, ["cheap.service", "deep2.service"],
                         duration_fn=lambda u: u.cost.init_cpu_ns)
    assert path.units == ("deep1.service", "deep2.service")
    assert path.length_ns == msec(80)


def test_weak_wants_edges_do_not_extend_the_path():
    registry = UnitRegistry([
        Unit(name="heavy.service",
             cost=SimCost(init_cpu_ns=msec(100), exec_bytes=0)),
        Unit(name="goal.service", wants=["heavy.service"],
             cost=SimCost(init_cpu_ns=msec(1), exec_bytes=0)),
    ])
    path = critical_path(registry, ["goal.service"],
                         duration_fn=lambda u: u.cost.init_cpu_ns)
    assert path.units == ("goal.service",)
    assert path.length_ns == msec(1)


def test_equal_length_chains_break_ties_deterministically():
    """Two equally costly chains: the lexicographically larger wins, so
    repeated analyses of the same registry agree."""
    registry = UnitRegistry([
        Unit(name="a.service"),
        Unit(name="b.service"),
        Unit(name="goal.service", requires=["a.service", "b.service"]),
    ])
    paths = {critical_path(registry, ["goal.service"],
                           duration_fn=lambda u: msec(1)).units
             for _ in range(5)}
    assert paths == {("b.service", "goal.service")}


def test_diamond_counts_shared_ancestor_once():
    registry = UnitRegistry([
        Unit(name="base.service"),
        Unit(name="left.service", requires=["base.service"]),
        Unit(name="right.service", requires=["base.service"]),
        Unit(name="goal.service",
             requires=["left.service", "right.service"]),
    ])
    path = critical_path(registry, ["goal.service"],
                         duration_fn=lambda u: msec(10))
    assert len(path.units) == 3  # base -> one arm -> goal
    assert path.length_ns == msec(30)


def test_dangling_strong_predecessor_is_skipped():
    """A requires edge to a unit missing from the registry contributes
    nothing (the analyzer flags it; the path must not crash)."""
    registry = UnitRegistry([
        Unit(name="a.service", requires=["ghost.service"]),
    ])
    path = critical_path(registry, ["a.service"],
                         duration_fn=lambda u: msec(2))
    assert path.units == ("a.service",)
    assert path.length_ns == msec(2)


def deep_after_chain(depth: int) -> UnitRegistry:
    """unit-0 <- After= unit-1 <- ... <- unit-(depth-1)."""
    units = [Unit(name="unit-0.service",
                  cost=SimCost(init_cpu_ns=1_000, exec_bytes=0))]
    for index in range(1, depth):
        units.append(Unit(name=f"unit-{index}.service",
                          after=[f"unit-{index - 1}.service"],
                          cost=SimCost(init_cpu_ns=1_000, exec_bytes=0)))
    return UnitRegistry(units)


def test_deep_chain_no_recursion_error():
    """Regression: a 5,000-unit After= chain must not hit the interpreter
    recursion limit (the old memoized DFS overflowed around ~1000)."""
    depth = 5_000
    path = critical_path(deep_after_chain(depth),
                         [f"unit-{depth - 1}.service"],
                         duration_fn=lambda u: 1_000)
    assert len(path.units) == depth
    assert path.units[0] == "unit-0.service"
    assert path.units[-1] == f"unit-{depth - 1}.service"
    assert path.length_ns == depth * 1_000


def test_deep_cycle_still_raises_analysis_error():
    """Cycle detection must report AnalysisError even on deep graphs,
    never RecursionError."""
    units = [Unit(name=f"unit-{i}.service",
                  after=[f"unit-{(i + 1) % 3_000}.service"])
             for i in range(3_000)]
    with pytest.raises(AnalysisError, match="cycle"):
        critical_path(UnitRegistry(units), ["unit-0.service"],
                      duration_fn=lambda u: 1)


def test_durations_computed_lazily_for_reachable_units_only():
    """Units outside the goals' ancestor closure must not be costed —
    large ingested registries with small goal sets would otherwise pay
    storage estimates for dead units."""
    registry = UnitRegistry([
        Unit(name="goal.service", requires=["dep.service"]),
        Unit(name="dep.service"),
        Unit(name="dead-1.service"),
        Unit(name="dead-2.service", requires=["dead-1.service"]),
    ])
    costed: list[str] = []

    def duration_fn(unit):
        costed.append(unit.name)
        return 1

    critical_path(registry, ["goal.service"], duration_fn=duration_fn)
    assert sorted(costed) == ["dep.service", "goal.service"]
