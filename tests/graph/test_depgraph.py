"""Tests for the typed dependency graph."""

from repro.graph.depgraph import DependencyGraph, DependencyKind
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def make_graph():
    registry = UnitRegistry([
        Unit(name="a.service", before=["b.service"]),
        Unit(name="b.service", requires=["c.service"], wants=["d.service"]),
        Unit(name="c.service", conflicts=["d.service"]),
        Unit(name="d.service", after=["c.service"]),
    ])
    return registry, DependencyGraph(registry)


def test_edges_normalized_to_predecessor_first():
    _, graph = make_graph()
    kinds = {(e.predecessor, e.successor, e.kind) for e in graph.edges}
    assert ("a.service", "b.service", DependencyKind.BEFORE) in kinds
    assert ("c.service", "b.service", DependencyKind.REQUIRES) in kinds
    assert ("d.service", "b.service", DependencyKind.WANTS) in kinds
    assert ("c.service", "d.service", DependencyKind.AFTER) in kinds


def test_declared_by_tracks_origin():
    _, graph = make_graph()
    before_edge = graph.edges_of_kind(DependencyKind.BEFORE)[0]
    assert before_edge.declared_by == "a.service"
    after_edge = graph.edges_of_kind(DependencyKind.AFTER)[0]
    assert after_edge.declared_by == "d.service"


def test_adjacency_queries():
    _, graph = make_graph()
    assert {e.successor for e in graph.outgoing("c.service")} == {"b.service",
                                                                  "d.service"}
    assert {e.predecessor for e in graph.incoming("b.service")} == {
        "a.service", "c.service", "d.service"}


def test_ordering_excludes_conflicts():
    _, graph = make_graph()
    assert "d.service" not in graph.ordering_successors("c.service") or \
        graph.ordering_successors("c.service").count("d.service") == 1
    # The conflicts edge is not an ordering edge.
    conflict_edges = graph.edges_of_kind(DependencyKind.CONFLICTS)
    assert len(conflict_edges) == 1
    assert not conflict_edges[0].kind.is_ordering


def test_strong_closure_follows_requires_only():
    registry = UnitRegistry([
        Unit(name="app.service", requires=["mid.service"], wants=["extra.service"]),
        Unit(name="mid.service", requires=["base.service"]),
        Unit(name="base.service"),
        Unit(name="extra.service"),
        Unit(name="noise.service", before=["app.service"]),
    ])
    graph = DependencyGraph(registry)
    closure = graph.strong_closure(["app.service"])
    assert closure == {"app.service", "mid.service", "base.service"}


def test_strong_closure_tolerates_missing_units():
    registry = UnitRegistry([Unit(name="a.service", requires=["ghost.service"])])
    graph = DependencyGraph(registry)
    assert graph.strong_closure(["a.service"]) == {"a.service", "ghost.service"}


def test_len_counts_edges():
    _, graph = make_graph()
    assert len(graph) == 5
