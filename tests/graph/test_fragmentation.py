"""Tests for the Fig. 3 group-fragmentation model."""

import pytest

from repro.errors import AnalysisError
from repro.graph.fragmentation import group_fragmentation
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def test_independent_groups_stay_intact():
    registry = UnitRegistry([
        Unit(name="a1.service"), Unit(name="a2.service"),
        Unit(name="b1.service"), Unit(name="b2.service"),
    ])
    groups = {"a1.service": "a", "a2.service": "a",
              "b1.service": "b", "b2.service": "b"}
    report = group_fragmentation(registry, groups)
    assert report.fragments == {"a": 1, "b": 1}
    assert report.split_groups() == []
    assert report.total_fragments == 2


def test_fig3_cross_group_dependency_splits_a_group():
    """Fig. 3: new service c in group a is required by service a in group
    b, while group b's earlier member must precede group a's head — group
    b is forced apart."""
    registry = UnitRegistry([
        # group b: b-head must come before c (group a), b-tail requires c.
        Unit(name="b-head.service", before=["c.service"]),
        Unit(name="b-tail.service", requires=["c.service"]),
        # group a
        Unit(name="c.service"),
        Unit(name="a-other.service"),
    ])
    groups = {"b-head.service": "b", "b-tail.service": "b",
              "c.service": "a", "a-other.service": "a"}
    report = group_fragmentation(registry, groups)
    assert report.fragments["b"] == 2
    assert "b" in report.split_groups()


def test_intra_group_dependencies_do_not_split():
    registry = UnitRegistry([
        Unit(name="a1.service"),
        Unit(name="a2.service", requires=["a1.service"]),
        Unit(name="a3.service", requires=["a2.service"]),
    ])
    report = group_fragmentation(registry, {n: "a" for n in
                                            ("a1.service", "a2.service",
                                             "a3.service")})
    assert report.fragments == {"a": 1}


def test_ungrouped_units_form_implicit_group():
    registry = UnitRegistry([Unit(name="x.service"), Unit(name="y.service")])
    report = group_fragmentation(registry, {})
    assert report.fragments == {"<ungrouped>": 1}


def test_order_is_a_valid_topological_order():
    registry = UnitRegistry([
        Unit(name="a.service"),
        Unit(name="b.service", requires=["a.service"]),
        Unit(name="c.service", after=["b.service"]),
    ])
    report = group_fragmentation(registry, {})
    order = list(report.order)
    assert order.index("a.service") < order.index("b.service")
    assert order.index("b.service") < order.index("c.service")


def test_cycle_raises():
    registry = UnitRegistry([
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
    ])
    with pytest.raises(AnalysisError, match="cyclic"):
        group_fragmentation(registry, {})


def test_deterministic():
    registry = UnitRegistry([
        Unit(name="a1.service"), Unit(name="b1.service"),
        Unit(name="a2.service", requires=["b1.service"]),
    ])
    groups = {"a1.service": "a", "a2.service": "a", "b1.service": "b"}
    assert group_fragmentation(registry, groups) == group_fragmentation(registry,
                                                                        groups)
