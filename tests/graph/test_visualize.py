"""Tests for DOT export and Fig. 2 statistics."""

from repro.graph.visualize import figure2_stats, to_dot
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit
from tests.fixtures import mini_tv_registry


def test_stats_count_edge_kinds():
    registry = UnitRegistry([
        Unit(name="a.service", requires=["b.service"], wants=["c.service"],
             after=["d.service"]),
        Unit(name="b.service", before=["c.service"]),
        Unit(name="c.service"),
        Unit(name="d.service"),
        Unit(name="goal.target"),
    ])
    stats = figure2_stats(registry)
    assert stats.units == 5
    assert stats.services == 4
    assert stats.strong_edges == 1
    assert stats.weak_edges == 1
    assert stats.ordering_edges == 2
    assert stats.edges == 4
    assert stats.max_fan_in >= 1
    assert stats.avg_degree > 0


def test_empty_registry_stats():
    stats = figure2_stats(UnitRegistry())
    assert stats.units == 0
    assert stats.avg_degree == 0.0


def test_dot_output_contains_nodes_and_colored_edges():
    dot = to_dot(mini_tv_registry(), title="mini-tv")
    assert dot.startswith('digraph "mini-tv"')
    assert '"dbus.service"' in dot
    assert "color=red" in dot  # requires edges
    assert "color=green" in dot  # wants edges
    assert dot.rstrip().endswith("}")


def test_dot_highlight_fills_bb_group():
    dot = to_dot(mini_tv_registry(), highlight={"fasttv.service"})
    assert "fillcolor=lightyellow" in dot


def test_dot_shapes_by_unit_type():
    dot = to_dot(mini_tv_registry())
    assert "hexagon" in dot  # target
    assert "ellipse" in dot  # mount/socket
