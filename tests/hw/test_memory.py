"""Tests for the DRAM initialization cost model."""

import pytest

from repro.errors import HardwareError
from repro.hw.memory import DRAMModel
from repro.quantities import GiB, msec


def test_ue48h6200_figures():
    # The paper's Fig. 6(a): 370 ms full init, 110 ms early init for 1 GiB.
    dram = DRAMModel(size_bytes=GiB(1))
    assert dram.full_init_ns() == msec(370)
    assert dram.early_init_ns() == msec(110)
    assert dram.deferred_init_ns() == msec(260)


def test_init_scales_with_dram_size():
    small = DRAMModel(size_bytes=GiB(1))
    large = DRAMModel(size_bytes=GiB(3))
    assert large.full_init_ns() == pytest.approx(3 * small.full_init_ns(), rel=1e-6)


def test_early_plus_deferred_equals_full():
    for gib in (1, 2, 3, 4):
        dram = DRAMModel(size_bytes=GiB(gib))
        assert dram.early_init_ns() + dram.deferred_init_ns() == dram.full_init_ns()


def test_gib_property():
    assert DRAMModel(size_bytes=GiB(2)).gib == 2.0


def test_invalid_sizes_rejected():
    with pytest.raises(HardwareError):
        DRAMModel(size_bytes=0)
    with pytest.raises(HardwareError):
        DRAMModel(size_bytes=GiB(1), early_fraction=0.0)
    with pytest.raises(HardwareError):
        DRAMModel(size_bytes=GiB(1), early_fraction=1.5)
    with pytest.raises(HardwareError):
        DRAMModel(size_bytes=GiB(1), full_init_ns_per_gib=0)
