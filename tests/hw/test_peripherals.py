"""Direct tests for peripherals and storage write timing."""

import pytest

from repro.errors import HardwareError
from repro.hw.peripherals import Peripheral, PeripheralClass
from repro.hw.presets import emmc_ue48h6200
from repro.hw.storage import AccessPattern
from repro.quantities import MiB, msec


def test_tv_boot_criticality_by_class():
    critical_classes = (PeripheralClass.BROADCAST, PeripheralClass.DISPLAY,
                        PeripheralClass.INPUT, PeripheralClass.PLATFORM)
    for klass in PeripheralClass:
        peripheral = Peripheral("x", klass, hw_init_ns=msec(1), driver="d")
        assert peripheral.boot_critical_for_tv == (klass in critical_classes)


def test_negative_init_time_rejected():
    with pytest.raises(HardwareError):
        Peripheral("bad", PeripheralClass.INPUT, hw_init_ns=-1, driver="d")


def test_write_time_slower_than_read():
    device = emmc_ue48h6200()
    nbytes = MiB(10)
    assert device.write_time_ns(nbytes) > device.read_time_ns(nbytes)
    assert device.write_time_ns(nbytes, AccessPattern.RANDOM) > \
        device.write_time_ns(nbytes, AccessPattern.SEQUENTIAL)


def test_default_write_throughput_is_half_of_read():
    device = emmc_ue48h6200()
    assert device.seq_write_bps == device.seq_read_bps // 2
    assert device.rand_write_bps == device.rand_read_bps // 2
