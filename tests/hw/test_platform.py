"""Tests for platform descriptions and presets."""

import pytest

from repro.errors import HardwareError
from repro.hw.memory import DRAMModel
from repro.hw.platform import HardwarePlatform
from repro.hw.presets import galaxy_s6_like, nx300, ue48h6200
from repro.quantities import GiB, MiB
from repro.sim import Simulator


def test_ue48h6200_matches_paper_spec():
    board = ue48h6200()
    assert board.cpu_cores == 4
    assert board.dram.size_bytes == GiB(1)
    assert board.storage.seq_read_bps == MiB(117)
    assert board.storage.rand_read_bps == MiB(37)
    assert board.storage.capacity_bytes == GiB(8)


def test_tv_has_broadcast_path_peripherals():
    board = ue48h6200()
    for name in ("tuner", "demux", "video-decoder", "display-panel", "remote-receiver"):
        assert board.peripheral(name).name == name


def test_boot_critical_split_for_tv():
    board = ue48h6200()
    critical = {p.name for p in board.boot_critical_peripherals()}
    deferrable = {p.name for p in board.deferrable_peripherals()}
    assert "tuner" in critical
    assert "display-panel" in critical
    assert "usb" in deferrable
    assert "wifi" in deferrable
    assert critical.isdisjoint(deferrable)
    assert critical | deferrable == set(board.peripherals)


def test_unknown_peripheral_raises():
    with pytest.raises(HardwareError, match="no peripheral"):
        ue48h6200().peripheral("flux-capacitor")


def test_presets_return_fresh_objects():
    a, b = ue48h6200(), ue48h6200()
    assert a.storage is not b.storage
    assert a.peripherals is not b.peripherals


def test_attach_binds_storage():
    sim = Simulator()
    board = ue48h6200().attach(sim)

    def reader():
        yield from board.storage.read(1024)

    sim.spawn(reader(), name="r")
    sim.run()
    assert board.storage.bytes_read == 1024


def test_galaxy_s6_preset_background_figures():
    phone = galaxy_s6_like()
    assert phone.cpu_cores == 8
    assert phone.dram.size_bytes == GiB(3)
    assert phone.storage.seq_read_bps == MiB(300)
    assert phone.decompress_bps == MiB(35)


def test_nx300_is_a_camera():
    camera = nx300()
    assert "lens" in camera.peripherals
    assert "sensor" in camera.peripherals
    assert camera.cpu_cores == 2


def test_platform_validation():
    with pytest.raises(HardwareError):
        HardwarePlatform(name="bad", cpu_cores=0, dram=DRAMModel(size_bytes=GiB(1)),
                         storage=ue48h6200().storage)
