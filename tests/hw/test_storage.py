"""Tests for the storage device model."""

import pytest

from repro.errors import HardwareError
from repro.hw.presets import emmc_ue48h6200, hdd_barracuda, ssd_850_evo
from repro.hw.storage import AccessPattern, StorageDevice
from repro.quantities import MiB, msec, sec
from repro.sim import Simulator


def test_sequential_read_time_matches_throughput():
    device = emmc_ue48h6200()
    # 117 MiB at 117 MiB/s = 1 s (+100 us request latency).
    time_ns = device.read_time_ns(MiB(117), AccessPattern.SEQUENTIAL)
    assert time_ns == pytest.approx(sec(1), rel=1e-3)


def test_random_read_is_slower_than_sequential():
    device = emmc_ue48h6200()
    nbytes = MiB(10)
    assert device.read_time_ns(nbytes, AccessPattern.RANDOM) > \
        device.read_time_ns(nbytes, AccessPattern.SEQUENTIAL)


def test_ssd_beats_emmc_beats_nothing():
    nbytes = MiB(50)
    ssd = ssd_850_evo().read_time_ns(nbytes)
    emmc = emmc_ue48h6200().read_time_ns(nbytes)
    assert ssd < emmc


def test_hdd_random_read_is_seek_dominated_figure():
    hdd = hdd_barracuda()
    assert hdd.rand_read_bps == 65 * 10**6


def test_zero_byte_read_costs_only_latency():
    device = emmc_ue48h6200()
    assert device.read_time_ns(0) == device.request_latency_ns


def test_read_in_simulation_advances_time():
    sim = Simulator()
    device = emmc_ue48h6200().attach(sim)

    def reader():
        yield from device.read(MiB(117))

    sim.spawn(reader(), name="reader")
    sim.run()
    assert sim.now == pytest.approx(sec(1), rel=1e-3)
    assert device.bytes_read == MiB(117)
    assert device.requests == 1


def test_concurrent_reads_queue_on_the_channel():
    sim = Simulator()
    device = emmc_ue48h6200().attach(sim)

    def reader():
        yield from device.read(MiB(117))

    sim.spawn(reader(), name="r1")
    sim.spawn(reader(), name="r2")
    sim.run()
    # Two 1 s reads on one channel serialize to ~2 s.
    assert sim.now == pytest.approx(sec(2), rel=1e-3)


def test_write_accounting():
    sim = Simulator()
    device = emmc_ue48h6200().attach(sim)

    def writer():
        yield from device.write(MiB(10))

    sim.spawn(writer(), name="w")
    sim.run()
    assert device.bytes_written == MiB(10)
    # Default write throughput is half of read: ~171 ms for 10 MiB.
    assert sim.now > msec(150)


def test_unattached_device_rejects_io():
    sim = Simulator()
    device = emmc_ue48h6200()  # not attached

    def reader():
        yield from device.read(1024)

    sim.spawn(reader(), name="r")
    with pytest.raises(HardwareError, match="not attached"):
        sim.run()


def test_read_beyond_capacity_rejected():
    sim = Simulator()
    device = StorageDevice("tiny", seq_read_bps=MiB(100), rand_read_bps=MiB(10),
                           capacity_bytes=1024).attach(sim)

    def reader():
        yield from device.read(2048)

    sim.spawn(reader(), name="r")
    with pytest.raises(HardwareError, match="capacity"):
        sim.run()


def test_negative_size_rejected():
    sim = Simulator()
    device = emmc_ue48h6200().attach(sim)

    def reader():
        yield from device.read(-1)

    sim.spawn(reader(), name="r")
    with pytest.raises(HardwareError, match="negative"):
        sim.run()


def test_invalid_throughput_rejected():
    with pytest.raises(HardwareError):
        StorageDevice("bad", seq_read_bps=0, rand_read_bps=MiB(1))
