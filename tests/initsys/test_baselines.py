"""Tests for the SysVinit-rcS and out-of-order baselines (§2.5)."""

import pytest

from repro.hw.presets import ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.outoforder import OutOfOrderInitScheme
from repro.initsys.sysv import SysVInitScheme
from repro.initsys.transaction import Transaction
from repro.kernel.rcu import RCUSubsystem
from repro.sim import Simulator, Wait
from tests.fixtures import COMPLETION_UNITS, mini_tv_registry


def run_parallel_in_order(cores=4):
    """The same unit set under the systemd-style executor alone (no
    manager infrastructure), for apples-to-apples scheme comparisons."""
    sim = Simulator(cores=cores)
    platform = ue48h6200().attach(sim)
    registry = mini_tv_registry()
    registry.apply_install_sections()
    txn = Transaction(registry, ["multi-user.target"])
    executor = JobExecutor(sim, txn, platform.storage, RCUSubsystem(sim),
                           PathRegistry(sim))
    executor.start_all()
    complete_at = {}

    def watcher():
        for name in COMPLETION_UNITS:
            job = txn.job(name)
            if not job.ready.fired:
                yield Wait(job.ready)
        complete_at["t"] = sim.now

    sim.spawn(watcher(), name="watcher")
    sim.run()
    return complete_at["t"]


def run_sysv(cores=4):
    sim = Simulator(cores=cores)
    platform = ue48h6200().attach(sim)
    scheme = SysVInitScheme(sim, mini_tv_registry(), platform.storage,
                            RCUSubsystem(sim), goal="multi-user.target",
                            completion_units=COMPLETION_UNITS)
    scheme.spawn()
    sim.run()
    return sim, scheme


def run_ooo(path_check, cores=4):
    sim = Simulator(cores=cores)
    platform = ue48h6200().attach(sim)
    scheme = OutOfOrderInitScheme(sim, mini_tv_registry(), platform.storage,
                                  RCUSubsystem(sim), goal="multi-user.target",
                                  completion_units=COMPLETION_UNITS,
                                  path_check=path_check)
    scheme.spawn()
    sim.run()
    return sim, scheme


def test_sysv_boots_but_sequentially():
    sim, scheme = run_sysv()
    assert scheme.boot_complete_ns is not None
    # Every unit started one at a time: no two service spans overlap.
    spans = [s for s in sim.tracer.spans_in("service")]
    spans.sort(key=lambda s: s.start_ns)
    for earlier, later in zip(spans, spans[1:]):
        assert earlier.end_ns <= later.start_ns


def test_sysv_start_order_respects_dependencies():
    sim, scheme = run_sysv()
    order = scheme.start_order()
    assert order.index("var.mount") < order.index("dbus.service")
    assert order.index("dbus.service") < order.index("fasttv.service")


def test_sysv_is_slower_than_parallel_in_order():
    _, sysv = run_sysv()
    parallel = run_parallel_in_order()
    assert parallel < sysv.boot_complete_ns


def test_sysv_gains_nothing_from_more_cores():
    _, one_core = run_sysv(cores=1)
    _, four_cores = run_sysv(cores=4)
    ratio = four_cores.boot_complete_ns / one_core.boot_complete_ns
    assert ratio > 0.95  # essentially no parallel speedup


def test_out_of_order_without_path_check_violates_dependencies():
    sim, scheme = run_ooo(path_check=False)
    assert scheme.result.boot_complete_ns is not None
    # Services started before their requirements were ready.
    assert len(scheme.result.violations) > 0
    violating_units = {v[0] for v in scheme.result.violations}
    assert "dbus.service" in violating_units or "tuner.service" in violating_units


def test_out_of_order_with_path_check_is_correct_but_polls():
    sim, scheme = run_ooo(path_check=True)
    assert scheme.result.violations == []
    assert scheme.result.total_polls > 0


def test_path_check_discovery_latency_quantized_to_poll_interval():
    """Path-check readiness is discovered only at the next poll, so the
    polling variant completes later than the event-driven in-order boot."""
    _, ooo = run_ooo(path_check=True)
    parallel = run_parallel_in_order()
    assert parallel < ooo.result.boot_complete_ns


def test_deterministic_baselines():
    _, a = run_ooo(path_check=True)
    _, b = run_ooo(path_check=True)
    assert a.result.boot_complete_ns == b.result.boot_complete_ns
    assert a.result.total_polls == b.result.total_polls
