"""Tests for drop-in directory merging (``<unit>.d/*.conf``)."""

import pytest

from repro.initsys.registry import UnitRegistry
from repro.initsys.unitfile import merge_parsed, parse_unit_file
from repro.initsys.units import ServiceType, Unit


class TestMergeParsed:
    def test_scalar_override(self):
        base = parse_unit_file("[Service]\nType=simple\n", name="x.service")
        overlay = parse_unit_file("[Service]\nType=notify\n", name="o")
        merged = merge_parsed(base, overlay)
        assert merged.get("Service", "Type") == "notify"

    def test_list_keys_append(self):
        base = parse_unit_file("[Unit]\nRequires=a.service\n", name="x.service")
        overlay = parse_unit_file("[Unit]\nRequires=b.service\n", name="o")
        merged = merge_parsed(base, overlay)
        assert merged.get_list("Unit", "Requires") == ["a.service", "b.service"]

    def test_empty_assignment_resets_list(self):
        base = parse_unit_file("[Unit]\nBefore=var.mount\n", name="x.service")
        overlay = parse_unit_file("[Unit]\nBefore=\n", name="o")
        merged = merge_parsed(base, overlay)
        assert merged.get_list("Unit", "Before") == []

    def test_new_sections_added(self):
        base = parse_unit_file("[Unit]\nDescription=x\n", name="x.service")
        overlay = parse_unit_file("[X-Simulation]\nInitCpuNs=5\n", name="o")
        merged = merge_parsed(base, overlay)
        assert merged.get("X-Simulation", "InitCpuNs") == "5"

    def test_base_not_mutated(self):
        base = parse_unit_file("[Unit]\nRequires=a.service\n", name="x.service")
        overlay = parse_unit_file("[Unit]\nRequires=b.service\n", name="o")
        merge_parsed(base, overlay)
        assert base.get_list("Unit", "Requires") == ["a.service"]


class TestLoadDirectoryDropins:
    def test_dropins_merge_in_lexical_order(self, tmp_path):
        (tmp_path / "app.service").write_text(
            "[Service]\nType=simple\n[Unit]\nRequires=a.service\n")
        dropin = tmp_path / "app.service.d"
        dropin.mkdir()
        (dropin / "10-type.conf").write_text("[Service]\nType=oneshot\n")
        (dropin / "20-type.conf").write_text("[Service]\nType=notify\n")
        (dropin / "30-deps.conf").write_text("[Unit]\nRequires=b.service\n")
        registry = UnitRegistry()
        registry.load_directory(tmp_path)
        unit = registry.get("app.service")
        assert unit.service_type is ServiceType.NOTIFY  # last wins
        assert unit.requires == ["a.service", "b.service"]

    def test_admin_neutralizes_vendor_ordering(self, tmp_path):
        """The §4.2 counter-move: a drop-in resets a vendor's abusive
        Before=var.mount without touching the vendor's file."""
        (tmp_path / "vendor.service").write_text(
            "[Unit]\nBefore=var.mount\n[Service]\nType=oneshot\n")
        dropin = tmp_path / "vendor.service.d"
        dropin.mkdir()
        (dropin / "override.conf").write_text("[Unit]\nBefore=\n")
        registry = UnitRegistry()
        registry.load_directory(tmp_path)
        assert registry.get("vendor.service").before == []

    def test_non_conf_files_ignored(self, tmp_path):
        (tmp_path / "app.service").write_text("[Service]\nType=simple\n")
        dropin = tmp_path / "app.service.d"
        dropin.mkdir()
        (dropin / "readme.txt").write_text("not a conf")
        registry = UnitRegistry()
        registry.load_directory(tmp_path)
        assert registry.get("app.service").service_type is ServiceType.SIMPLE

    def test_dropin_only_simulation_costs(self, tmp_path):
        (tmp_path / "app.service").write_text("[Service]\nType=oneshot\n")
        dropin = tmp_path / "app.service.d"
        dropin.mkdir()
        (dropin / "cost.conf").write_text(
            "[X-Simulation]\nInitCpuNs=7000000\nRcuSyncs=2\n")
        registry = UnitRegistry()
        registry.load_directory(tmp_path)
        unit = registry.get("app.service")
        assert unit.cost.init_cpu_ns == 7_000_000
        assert unit.cost.rcu_syncs == 2
