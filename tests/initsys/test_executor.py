"""Tests for the parallel job executor and service semantics."""

import pytest

from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import EdgeKind, Transaction
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator


def run_transaction(units, goal="goal.target", cores=4, edge_filter=None,
                    priority_fn=None, preexisting_paths=None):
    sim = Simulator(cores=cores)
    storage = emmc_ue48h6200().attach(sim)
    rcu = RCUSubsystem(sim)
    registry = UnitRegistry(units)
    txn = Transaction(registry, [goal])
    paths = PathRegistry(sim, preexisting=preexisting_paths)
    executor = JobExecutor(sim, txn, storage, rcu, paths,
                           edge_filter=edge_filter, priority_fn=priority_fn)
    executor.start_all()
    sim.run()
    return sim, txn, executor


def service(name, *, stype=ServiceType.ONESHOT, cpu_ms=5, exec_bytes=0,
            **unit_kwargs):
    return Unit(name=name, service_type=stype,
                cost=SimCost(init_cpu_ns=msec(cpu_ms), exec_bytes=exec_bytes),
                **unit_kwargs)


def test_all_jobs_complete():
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["a.service", "b.service"]),
        service("a.service"),
        service("b.service"),
    ])
    for job in txn.jobs.values():
        assert job.ready_at_ns is not None


def test_strong_edge_waits_for_readiness():
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["late.service"]),
        service("late.service", requires=["early.service"], cpu_ms=1),
        service("early.service", cpu_ms=20),
    ])
    early = txn.job("early.service")
    late = txn.job("late.service")
    assert late.started_at_ns >= early.ready_at_ns


def test_weak_edge_waits_only_for_launch():
    """Wants: launch B not before launching A — B may be running while A
    still initializes."""
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["b.service"], wants=["a.service"]),
        service("b.service", wants=["a.service"], cpu_ms=1),
        # a is slow to become ready (notify with long init).
        service("a.service", stype=ServiceType.NOTIFY, cpu_ms=50),
    ])
    a = txn.job("a.service")
    b = txn.job("b.service")
    assert b.started_at_ns >= a.started_at_ns
    assert b.ready_at_ns < a.ready_at_ns


def test_independent_services_run_in_parallel():
    def total_time(cores):
        sim, _, _ = run_transaction([
            Unit(name="goal.target",
                 requires=[f"s{n}.service" for n in range(4)]),
            *[service(f"s{n}.service", cpu_ms=20) for n in range(4)],
        ], cores=cores)
        return sim.now

    assert total_time(4) < total_time(1) / 2


def test_simple_service_ready_at_fork_oneshot_at_exit():
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["simple.service", "oneshot.service"]),
        service("simple.service", stype=ServiceType.SIMPLE, cpu_ms=30),
        service("oneshot.service", stype=ServiceType.ONESHOT, cpu_ms=30),
    ])
    simple = txn.job("simple.service")
    oneshot = txn.job("oneshot.service")
    # The simple service is ready long before its init work completes.
    assert simple.ready_at_ns < simple.done_at_ns
    assert oneshot.ready_at_ns == oneshot.done_at_ns
    assert simple.ready_at_ns < oneshot.ready_at_ns


def test_notify_service_ready_after_extra_delay():
    units = [
        Unit(name="goal.target", requires=["n.service"]),
        Unit(name="n.service", service_type=ServiceType.NOTIFY,
             cost=SimCost(init_cpu_ns=msec(5), ready_extra_ns=msec(7))),
    ]
    sim, txn, _ = run_transaction(units)
    job = txn.job("n.service")
    assert job.ready_at_ns - job.started_at_ns >= msec(12)


def test_condition_path_missing_skips_unit():
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["cond.service"]),
        service("cond.service", condition_paths=["/nonexistent"]),
    ])
    from repro.initsys.transaction import JobState
    assert txn.job("cond.service").state is JobState.SKIPPED
    # Dependents are not wedged: goal still completed.
    assert txn.job("goal.target").ready_at_ns is not None


def test_condition_path_present_runs_unit():
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["cond.service"]),
        service("cond.service", condition_paths=["/var"]),
    ], preexisting_paths={"/var"})
    from repro.initsys.transaction import JobState
    assert txn.job("cond.service").state is JobState.DONE


def test_provides_paths_satisfy_later_conditions():
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["consumer.service"]),
        service("consumer.service", requires=["var.mount"],
                condition_paths=["/var"]),
        service("var.mount", provides_paths=["/var"], cpu_ms=2),
    ])
    from repro.initsys.transaction import JobState
    assert txn.job("consumer.service").state is JobState.DONE


def test_edge_filter_unblocks_isolated_service():
    """The BB Group Isolator mechanism: dropping an out-of-group ordering
    edge lets the critical service start immediately."""
    units = [
        Unit(name="goal.target", requires=["dbus.service", "slow.service"]),
        service("dbus.service", after=["slow.service"], cpu_ms=2),
        service("slow.service", cpu_ms=100),
    ]

    def no_filter_time():
        _, txn, _ = run_transaction([Unit(name=u.name, service_type=u.service_type,
                                          requires=list(u.requires),
                                          after=list(u.after), cost=u.cost)
                                     for u in units])
        return txn.job("dbus.service").ready_at_ns

    def filtered_time():
        def edge_filter(edge):
            return edge.successor != "dbus.service"

        _, txn, _ = run_transaction([Unit(name=u.name, service_type=u.service_type,
                                          requires=list(u.requires),
                                          after=list(u.after), cost=u.cost)
                                     for u in units], edge_filter=edge_filter)
        return txn.job("dbus.service").ready_at_ns

    assert filtered_time() < no_filter_time()


def test_priority_fn_prioritizes_critical_work():
    """With one core, high-priority services finish first."""
    def ready_time(priority_fn):
        _, txn, _ = run_transaction([
            Unit(name="goal.target",
                 requires=["critical.service"] + [f"bulk{n}.service" for n in range(6)]),
            service("critical.service", cpu_ms=5),
            *[service(f"bulk{n}.service", cpu_ms=20) for n in range(6)],
        ], cores=1, priority_fn=priority_fn)
        return txn.job("critical.service").ready_at_ns

    boosted = ready_time(lambda u: 10 if u.name == "critical.service" else 100)
    flat = ready_time(None)
    assert boosted < flat


def test_target_is_ready_when_predecessors_are():
    sim, txn, _ = run_transaction([
        Unit(name="goal.target", requires=["a.service"]),
        service("a.service", cpu_ms=3),
    ])
    goal = txn.job("goal.target")
    a = txn.job("a.service")
    assert goal.ready_at_ns >= a.ready_at_ns


def test_static_build_skips_dynamic_link():
    def ready_time(static):
        _, txn, _ = run_transaction([
            Unit(name="goal.target", requires=["s.service"]),
            Unit(name="s.service", service_type=ServiceType.ONESHOT,
                 static_build=static,
                 cost=SimCost(init_cpu_ns=msec(1), dynamic_link_ns=msec(4))),
        ])
        return txn.job("s.service").ready_at_ns

    assert ready_time(True) < ready_time(False)


def test_rcu_syncs_charged_during_init():
    sim, txn, executor = run_transaction([
        Unit(name="goal.target", requires=["r.service"]),
        Unit(name="r.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(2), rcu_syncs=3)),
    ])
    # The RCU subsystem was exercised 3 times.
    assert executor._runner._rcu.sync_count == 3


def test_multi_process_service_forks_each_process():
    units = [
        Unit(name="goal.target", requires=["multi.service"]),
        Unit(name="multi.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(processes=3, fork_ns=msec(1), init_cpu_ns=0)),
    ]
    sim, txn, _ = run_transaction(units)
    job = txn.job("multi.service")
    assert job.started_at_ns >= msec(3)
