"""Regression tests for executor failure paths.

Covers the two executor bugs fixed in the fault-injection PR plus the
surrounding semantics:

* a TARGET's state must be final *before* its completions fire (waiters
  resume synchronously and read the state immediately),
* every start attempt records its own launch time, so ``started_at_ns``
  reflects the attempt that succeeded — not attempt 1 of a watchdogged
  unit,
* completion double-fire guards along the ``_fire_all``/``_mark_ready``
  paths (``Completion.fire`` raises if fired twice).
"""

import pytest

from repro.errors import SimulationError
from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import JobState, Transaction
from repro.initsys.units import RestartPolicy, ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator
from repro.sim.process import Wait


def build(units, goal="goal.target", preexisting=None):
    sim = Simulator(cores=4)
    storage = emmc_ue48h6200().attach(sim)
    registry = UnitRegistry(units)
    txn = Transaction(registry, [goal])
    paths = PathRegistry(sim, preexisting=preexisting)
    executor = JobExecutor(sim, txn, storage, RCUSubsystem(sim), paths)
    return sim, txn, executor, paths


def quick(name, **kwargs):
    kwargs.setdefault("service_type", ServiceType.ONESHOT)
    kwargs.setdefault("cost", SimCost(init_cpu_ns=msec(5), exec_bytes=0))
    return Unit(name=name, **kwargs)


class TestTargetStateAtFireTime:
    def test_waiter_observes_done_when_target_settles(self):
        """Completion.fire resumes waiters synchronously; the TARGET must
        already be in its final state when they look."""
        sim, txn, executor, _ = build([
            Unit(name="goal.target", requires=["base.service"]),
            quick("base.service"),
        ])
        executor.start_all()
        observed = []
        target = txn.job("goal.target")

        def observer():
            yield Wait(target.settled)
            observed.append(target.state)

        sim.spawn(observer(), name="observer")
        sim.run()
        assert observed == [JobState.DONE]
        assert target.done_at_ns is not None

    def test_strong_dependent_of_target_proceeds(self):
        """A unit requiring a TARGET wakes on its settled completion and
        must not misread the target as unfinished (or failed)."""
        sim, txn, executor, _ = build([
            Unit(name="goal.target", wants=["app.service"]),
            Unit(name="basic.target", requires=["base.service"]),
            quick("base.service"),
            quick("app.service", requires=["basic.target"],
                  after=["basic.target"]),
        ])
        executor.start_all()
        sim.run()
        assert txn.job("basic.target").state is JobState.DONE
        assert txn.job("app.service").state is JobState.DONE

    def test_failure_propagates_through_a_target(self):
        """FAILED is also read synchronously at wake time: a dependent
        requiring a failed TARGET fails rather than starting."""
        sim, txn, executor, _ = build([
            Unit(name="goal.target", wants=["app.service"]),
            Unit(name="basic.target", requires=["doomed.service"]),
            quick("doomed.service", failures_before_success=9,
                  restart_policy=RestartPolicy.NO),
            quick("app.service", requires=["basic.target"],
                  after=["basic.target"]),
        ])
        executor.start_all()
        sim.run()
        assert txn.job("basic.target").state is JobState.FAILED
        app = txn.job("app.service")
        assert app.state is JobState.FAILED
        assert "basic.target" in app.failure_reason


class TestPerAttemptStartTimes:
    def _watchdogged_unit(self):
        # Blocks on /dev/late until the path appears at 200 ms; the 50 ms
        # watchdog kills attempts 1-3, attempt 4 (at ~210 ms) succeeds.
        return Unit(name="late.service", service_type=ServiceType.ONESHOT,
                    waits_for_paths=["/dev/late"],
                    start_timeout_ns=msec(50),
                    restart_policy=RestartPolicy.ON_FAILURE,
                    max_restarts=3, restart_delay_ns=msec(20),
                    cost=SimCost(init_cpu_ns=msec(2), exec_bytes=0))

    def test_started_at_reflects_the_successful_attempt(self):
        sim, txn, executor, paths = build([
            Unit(name="goal.target", requires=["late.service"]),
            self._watchdogged_unit(),
        ])
        executor.start_all()
        sim.call_after(msec(200), lambda: paths.provide("/dev/late"))
        sim.run()
        job = txn.job("late.service")
        assert job.state is JobState.DONE
        assert job.attempts == 4
        assert len(job.attempt_started_ns) == 4
        # Regression: started_at_ns used to stick at attempt 1's time.
        assert job.started_at_ns == job.attempt_started_ns[-1]
        assert job.started_at_ns > job.attempt_started_ns[0]
        assert job.started_at_ns >= msec(200)
        # The span a bootchart would draw covers the winning attempt only.
        assert job.ready_at_ns - job.started_at_ns < msec(50)

    def test_started_completion_keeps_first_fire_semantics(self):
        """Weak dependents wait for the *first* launch; re-marking later
        attempts must not re-fire (Completion.fire raises on double fire)."""
        sim, txn, executor, paths = build([
            Unit(name="goal.target", requires=["late.service"],
                 wants=["watcher.service"]),
            self._watchdogged_unit(),
            # Wants= is the weak edge: wait for launch, not readiness.
            quick("watcher.service", wants=["late.service"]),
        ])
        executor.start_all()
        sim.call_after(msec(200), lambda: paths.provide("/dev/late"))
        sim.run()
        job = txn.job("late.service")
        assert job.started.fired
        # The weak dependent launched off attempt 1, long before success.
        watcher = txn.job("watcher.service")
        assert watcher.state is JobState.DONE
        assert watcher.started_at_ns < job.started_at_ns


class TestWatchdog:
    def test_watchdog_fires_and_attempt_counts_as_failed(self):
        sim, txn, executor, _ = build([
            Unit(name="goal.target", wants=["hung.service"]),
            Unit(name="hung.service", service_type=ServiceType.ONESHOT,
                 start_timeout_ns=msec(30), restart_policy=RestartPolicy.NO,
                 cost=SimCost(init_cpu_ns=msec(500), exec_bytes=0)),
        ])
        executor.start_all()
        sim.run()
        job = txn.job("hung.service")
        assert job.state is JobState.FAILED
        assert "hung.service" in executor.failed_jobs
        assert sim.now < msec(200)  # did not sit out the full 500 ms

    def test_watchdog_cancelled_after_fast_success(self):
        """The timer must be cancelled on success: simulated time ends at
        quiescence well before the (stale) timeout would have fired."""
        sim, txn, executor, _ = build([
            Unit(name="goal.target", requires=["fine.service"]),
            Unit(name="fine.service", service_type=ServiceType.ONESHOT,
                 start_timeout_ns=msec(10_000),
                 cost=SimCost(init_cpu_ns=msec(5), exec_bytes=0)),
        ])
        executor.start_all()
        sim.run()
        assert txn.job("fine.service").state is JobState.DONE
        assert sim.now < msec(10_000)

    def test_restart_exhaustion_after_repeated_timeouts(self):
        sim, txn, executor, _ = build([
            Unit(name="goal.target", wants=["hung.service"]),
            Unit(name="hung.service", service_type=ServiceType.ONESHOT,
                 start_timeout_ns=msec(20),
                 restart_policy=RestartPolicy.ON_FAILURE, max_restarts=2,
                 restart_delay_ns=msec(5),
                 cost=SimCost(init_cpu_ns=msec(500), exec_bytes=0)),
        ])
        executor.start_all()
        sim.run()
        job = txn.job("hung.service")
        assert job.state is JobState.FAILED
        assert job.attempts == 3  # initial + 2 restarts
        assert len(job.attempt_started_ns) == 3  # each attempt launched


class TestDoubleFireGuards:
    def test_completions_fire_exactly_once_on_success(self):
        sim, txn, executor, _ = build([
            Unit(name="goal.target", requires=["ok.service"]),
            quick("ok.service"),
        ])
        executor.start_all()
        sim.run()  # would raise SimulationError on any double fire
        job = txn.job("ok.service")
        for completion in (job.started, job.ready, job.settled):
            assert completion.fired
            with pytest.raises(SimulationError):
                completion.fire(job.name)

    def test_skipped_unit_fires_all_once(self):
        sim, txn, executor, _ = build([
            Unit(name="goal.target", wants=["cond.service"]),
            quick("cond.service", condition_paths=["/nonexistent"]),
        ])
        executor.start_all()
        sim.run()
        job = txn.job("cond.service")
        assert job.state is JobState.SKIPPED
        assert job.started.fired and job.ready.fired and job.settled.fired

    def test_failed_unit_settles_exactly_once(self):
        sim, txn, executor, _ = build([
            Unit(name="goal.target", wants=["doomed.service"]),
            quick("doomed.service", failures_before_success=9,
                  restart_policy=RestartPolicy.NO),
        ])
        executor.start_all()
        sim.run()
        job = txn.job("doomed.service")
        assert job.state is JobState.FAILED
        assert job.settled.fired
        with pytest.raises(SimulationError):
            job.settled.fire(job.name)
