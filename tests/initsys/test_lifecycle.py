"""Tests for failure injection, restart recovery, and failure propagation."""

import pytest

from repro.errors import ServiceFailureError
from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.manager import InitManager, ManagerConfig
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import JobState, Transaction
from repro.initsys.units import RestartPolicy, ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator


def run_units(units, goal="goal.target"):
    sim = Simulator(cores=4)
    storage = emmc_ue48h6200().attach(sim)
    registry = UnitRegistry(units)
    txn = Transaction(registry, [goal])
    executor = JobExecutor(sim, txn, storage, RCUSubsystem(sim),
                           PathRegistry(sim))
    executor.start_all()
    sim.run()
    return sim, txn, executor


def flaky(name, failures, policy=RestartPolicy.ON_FAILURE, max_restarts=3,
          **kwargs):
    return Unit(name=name, service_type=ServiceType.ONESHOT,
                failures_before_success=failures, restart_policy=policy,
                max_restarts=max_restarts, restart_delay_ns=msec(50),
                cost=SimCost(init_cpu_ns=msec(5), exec_bytes=0), **kwargs)


def test_healthy_unit_succeeds_first_attempt():
    sim, txn, executor = run_units([
        Unit(name="goal.target", requires=["ok.service"]),
        flaky("ok.service", failures=0),
    ])
    job = txn.job("ok.service")
    assert job.state is JobState.DONE
    assert job.attempts == 1
    assert executor.failed_jobs == []


def test_restart_recovers_a_flaky_unit():
    """Monitoring and recovery (§2.5.2): restart on failure."""
    sim, txn, executor = run_units([
        Unit(name="goal.target", requires=["flaky.service"]),
        flaky("flaky.service", failures=2),
    ])
    job = txn.job("flaky.service")
    assert job.state is JobState.DONE
    assert job.attempts == 3
    assert executor.failed_jobs == []
    # Two restart delays were paid.
    assert job.ready_at_ns >= 2 * msec(50)


def test_restart_budget_exhaustion_fails_permanently():
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["doomed.service"]),
        flaky("doomed.service", failures=10, max_restarts=2),
    ])
    job = txn.job("doomed.service")
    assert job.state is JobState.FAILED
    assert job.attempts == 3  # initial + 2 restarts
    assert "doomed.service" in executor.failed_jobs
    assert job.failure_reason is not None


def test_no_restart_policy_fails_on_first_crash():
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["fragile.service"]),
        flaky("fragile.service", failures=1, policy=RestartPolicy.NO),
    ])
    job = txn.job("fragile.service")
    assert job.state is JobState.FAILED
    assert job.attempts == 1


def test_failure_propagates_to_strong_dependents():
    """A unit whose requirement fails permanently fails too, instead of
    hanging the boot."""
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["app.service"]),
        flaky("base.service", failures=5, max_restarts=0,
              policy=RestartPolicy.NO),
        Unit(name="app.service", requires=["base.service"],
             cost=SimCost(exec_bytes=0)),
    ])
    app = txn.job("app.service")
    assert app.state is JobState.FAILED
    assert "base.service" in app.failure_reason
    assert set(executor.failed_jobs) == {"base.service", "app.service"}


def test_weak_dependents_survive_a_failure():
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["app.service"]),
        flaky("optional.service", failures=5, policy=RestartPolicy.NO,
              wanted_by=[]),
        Unit(name="app.service", wants=["optional.service"],
             after=["optional.service"],
             cost=SimCost(exec_bytes=0)),
    ])
    assert txn.job("app.service").state is JobState.DONE
    assert txn.job("optional.service").state is JobState.FAILED


def test_failed_completion_unit_raises_service_failure():
    sim = Simulator(cores=4)
    storage = emmc_ue48h6200().attach(sim)
    registry = UnitRegistry([
        Unit(name="multi-user.target", requires=["fasttv.service"]),
        flaky("fasttv.service", failures=9, policy=RestartPolicy.NO),
    ])
    manager = InitManager(sim, registry, storage, RCUSubsystem(sim),
                          ManagerConfig(completion_units=("fasttv.service",)))
    manager.spawn()
    with pytest.raises(ServiceFailureError, match="fasttv.service"):
        sim.run()


def test_restart_policy_round_trips_through_unit_file():
    unit = flaky("r.service", failures=2, max_restarts=5)
    from repro.initsys.unitfile import parse_unit_file, render_unit_file
    back = Unit.from_parsed(parse_unit_file(render_unit_file(unit.to_parsed()),
                                            name="r.service"))
    assert back.restart_policy is RestartPolicy.ON_FAILURE
    assert back.failures_before_success == 2
    assert back.max_restarts == 5
    assert back.restart_delay_ns == msec(50)


def test_invalid_restart_value_rejected():
    from repro.errors import UnitParseError
    from repro.initsys.unitfile import parse_unit_file

    with pytest.raises(UnitParseError, match="invalid Restart"):
        Unit.from_parsed(parse_unit_file("[Service]\nRestart=sometimes\n",
                                         name="x.service"))
