"""Tests for the init manager's full user-space boot."""

import pytest

from repro.errors import ConfigurationError
from repro.initsys.manager import BootCompletion, InitManager, ManagerConfig
from repro.initsys.startup_tasks import (core_startup_cost_ns,
                                         deferrable_startup_cost_ns)
from repro.kernel.modules import KernelModule
from repro.quantities import KiB, msec
from tests.fixtures import COMPLETION_UNITS, boot_mini_tv, mini_tv_registry


def test_boot_completes_and_reports_time():
    sim, manager = boot_mini_tv()
    assert manager.completion is not None
    assert manager.boot_complete_ns > 0
    assert set(manager.completion.unit_ready_ns) == set(COMPLETION_UNITS)
    assert sim.tracer.find_instant("boot.complete").time_ns == manager.boot_complete_ns


def test_boot_completion_before_everything_done():
    """Weakly wanted apps (messenger, store) may still be launching when
    the TV counts as booted."""
    sim, manager = boot_mini_tv()
    assert manager.boot_complete_ns < manager.all_done_ns


def test_completion_requires_units_in_transaction():
    config = ManagerConfig(completion_units=("ghost.service",))
    with pytest.raises(ConfigurationError, match="completion units"):
        boot_mini_tv(config)


def test_config_requires_completion_units():
    with pytest.raises(ConfigurationError):
        ManagerConfig(completion_units=())


def test_deferring_startup_tasks_shortens_init_phase():
    sim_plain, _ = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS))
    sim_bb, _ = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS,
                                           defer_startup_tasks=True))
    plain = sim_plain.tracer.find("init.initialization").duration_ns
    bb = sim_bb.tracer.find("init.initialization").duration_ns
    assert plain == pytest.approx(core_startup_cost_ns()
                                  + deferrable_startup_cost_ns(), rel=0.05)
    assert bb == pytest.approx(core_startup_cost_ns(), rel=0.05)


def test_deferred_startup_tasks_still_run_after_completion():
    sim, manager = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS,
                                              defer_startup_tasks=True))
    span = sim.tracer.find("init.enable-logging-scheme")
    assert span.start_ns >= manager.boot_complete_ns


def test_preparser_accelerates_boot():
    plain_sim, plain = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS))
    bb_sim, bb = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS,
                                            use_preparser=True))
    assert bb.boot_complete_ns < plain.boot_complete_ns


def test_deferred_submodules_speed_up_completion():
    plain_sim, plain = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS))
    bb_sim, bb = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS,
                                            defer_submodules=True))
    assert bb.boot_complete_ns < plain.boot_complete_ns
    # Deferred submodules run after completion.
    span = bb_sim.tracer.find("init.journal-flush-and-rotate")
    assert span.start_ns >= bb.boot_complete_ns


def test_kmod_worker_loads_boot_modules():
    modules = tuple(KernelModule(f"drv{n}", size_bytes=KiB(64)) for n in range(20))
    sim, manager = boot_mini_tv(boot_modules=modules)
    assert len(manager.module_loader.loaded) == 20


def test_ondemand_modularizer_skips_kmod_work():
    modules = tuple(KernelModule(f"drv{n}", size_bytes=KiB(64)) for n in range(20))
    _, plain = boot_mini_tv(boot_modules=modules)
    _, bb = boot_mini_tv(ManagerConfig(completion_units=COMPLETION_UNITS,
                                       ondemand_modules=True),
                         boot_modules=modules)
    assert len(bb.module_loader.loaded) == 0
    assert bb.boot_complete_ns < plain.boot_complete_ns


def test_on_boot_complete_hook_fires_at_completion():
    times = []

    def hook():
        times.append(True)

    sim, manager = boot_mini_tv(on_boot_complete=hook)
    assert times == [True]


def test_boot_complete_ns_before_completion_raises():
    from repro.hw.presets import ue48h6200
    from repro.kernel.rcu import RCUSubsystem
    from repro.sim import Simulator

    sim = Simulator()
    platform = ue48h6200().attach(sim)
    manager = InitManager(sim, mini_tv_registry(), platform.storage,
                          RCUSubsystem(sim),
                          ManagerConfig(completion_units=COMPLETION_UNITS))
    with pytest.raises(ConfigurationError, match="not completed"):
        _ = manager.boot_complete_ns


def test_boot_is_deterministic():
    _, a = boot_mini_tv()
    _, b = boot_mini_tv()
    assert a.boot_complete_ns == b.boot_complete_ns
    assert a.all_done_ns == b.all_done_ns


def test_edge_filter_and_priority_hooks_are_applied():
    """Isolating fasttv's ordering on the slow store app + boosting it
    completes boot earlier."""
    registry = mini_tv_registry()
    # Abusive ordering: store insists on running before fasttv.
    registry.get("store.service").before.append("fasttv.service")

    _, plain = boot_mini_tv(registry=registry)

    registry2 = mini_tv_registry()
    registry2.get("store.service").before.append("fasttv.service")
    bb_group = {"fasttv.service", "tuner.service", "demux.service",
                "remote-input.service", "dbus.service", "dbus.socket", "var.mount"}

    def edge_filter(edge):
        return not (edge.successor in bb_group and edge.predecessor not in bb_group)

    def priority_fn(unit):
        return 20 if unit.name in bb_group else 100

    _, bb = boot_mini_tv(registry=registry2, edge_filter=edge_filter,
                         priority_fn=priority_fn)
    assert bb.boot_complete_ns < plain.boot_complete_ns


def test_completion_dataclass():
    completion = BootCompletion(time_ns=msec(3500),
                                unit_ready_ns={"fasttv.service": msec(3400)})
    assert completion.time_ns == msec(3500)
