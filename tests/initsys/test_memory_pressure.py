"""Tests for memory-pressure management."""

import pytest

from repro.errors import ConfigurationError
from repro.initsys.memory_pressure import MemoryPressureManager
from repro.initsys.units import SimCost, Unit
from repro.quantities import MiB


def unit(name, mib):
    return Unit(name=name, cost=SimCost(memory_bytes=MiB(mib)))


def manager(dram_mib=100, **kwargs):
    kwargs.setdefault("budget_fraction", 1.0)
    kwargs.setdefault("critical_fraction", 0.8)
    return MemoryPressureManager(MiB(dram_mib), **kwargs)


def test_admission_accounts_usage():
    mgr = manager()
    assert mgr.admit(unit("a.service", 30)) is None
    assert mgr.used_bytes == MiB(30)
    assert mgr.pressure == pytest.approx(0.3)


def test_reclaim_triggers_past_critical_threshold():
    mgr = manager()
    mgr.admit(unit("a.service", 40))
    mgr.admit(unit("b.service", 30))
    event = mgr.admit(unit("c.service", 30))  # 100 > 80 critical
    assert event is not None
    assert event.victims  # somebody was expelled
    assert mgr.used_bytes <= mgr.critical_bytes


def test_largest_consumer_expelled_first_by_default():
    mgr = manager()
    mgr.admit(unit("small.service", 10))
    mgr.admit(unit("large.service", 50))
    event = mgr.admit(unit("new.service", 35))
    assert event.victims == ["large.service"]
    assert "small.service" in mgr.resident


def test_protected_units_never_expelled():
    mgr = manager(protected={"fasttv.service"})
    mgr.admit(unit("fasttv.service", 50))
    mgr.admit(unit("app.service", 25))
    event = mgr.admit(unit("other.service", 20))
    assert "fasttv.service" not in event.victims
    assert "fasttv.service" in mgr.resident


def test_all_protected_raises():
    mgr = manager(protected={"a.service", "b.service", "c.service"})
    mgr.admit(unit("a.service", 40))
    mgr.admit(unit("b.service", 30))
    with pytest.raises(ConfigurationError, match="protected"):
        mgr.admit(unit("c.service", 30))


def test_oversized_unit_rejected():
    mgr = manager(dram_mib=10)
    with pytest.raises(ConfigurationError, match="budget"):
        mgr.admit(unit("whale.service", 20))


def test_release_frees_memory():
    mgr = manager()
    mgr.admit(unit("a.service", 30))
    mgr.release("a.service")
    assert mgr.used_bytes == 0
    mgr.release("a.service")  # idempotent
    assert mgr.used_bytes == 0


def test_custom_importance_function():
    """BB-style policy: importance by priority class, not size."""
    importance = {"critical.service": 100.0, "app.service": 1.0}
    mgr = manager(importance_fn=lambda u: importance.get(u.name, 0.0))
    mgr.admit(unit("critical.service", 45))
    mgr.admit(unit("app.service", 25))
    event = mgr.admit(unit("new.service", 25))
    # app has lower importance than critical, so it goes first.
    assert event.victims == ["app.service"]


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        MemoryPressureManager(0)
    with pytest.raises(ConfigurationError):
        MemoryPressureManager(MiB(100), budget_fraction=0.0)
    with pytest.raises(ConfigurationError):
        MemoryPressureManager(MiB(100), critical_fraction=1.5)
