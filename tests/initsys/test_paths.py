"""Direct tests for the simulated path registry."""

import pytest

from repro.initsys.executor import PathRegistry
from repro.quantities import msec
from repro.sim import Simulator


def test_preexisting_and_provide():
    sim = Simulator()
    paths = PathRegistry(sim, preexisting={"/", "/run"})
    assert paths.exists("/run")
    assert not paths.exists("/var")
    paths.provide("/var")
    assert paths.exists("/var")
    assert {"/", "/run", "/var"} <= set(paths.paths)


def test_provide_is_idempotent():
    sim = Simulator()
    paths = PathRegistry(sim)
    paths.provide("/x")
    paths.provide("/x")
    assert paths.exists("/x")


def test_wait_for_wakes_on_provide():
    sim = Simulator()
    paths = PathRegistry(sim)
    woke_at = []

    def waiter():
        yield from paths.wait_for("/dev/tuner0")
        woke_at.append(sim.now)

    sim.spawn(waiter(), name="w")
    sim.call_after(msec(7), lambda: paths.provide("/dev/tuner0"))
    sim.run()
    assert woke_at == [msec(7)]


def test_wait_for_existing_path_returns_immediately():
    sim = Simulator()
    paths = PathRegistry(sim, preexisting={"/var"})
    done = []

    def waiter():
        yield from paths.wait_for("/var")
        done.append(sim.now)

    sim.spawn(waiter(), name="w")
    sim.run()
    assert done == [0]


def test_poll_for_quantizes_discovery_and_costs_cpu():
    sim = Simulator(cores=1, switch_cost_ns=0)
    paths = PathRegistry(sim)
    result = {}

    def poller():
        polls = yield from paths.poll_for("/flag", interval_ns=msec(10),
                                          check_cpu_ns=msec(1))
        result["polls"] = polls
        result["at"] = sim.now

    process = sim.spawn(poller(), name="p")
    sim.call_after(msec(25), lambda: paths.provide("/flag"))
    sim.run()
    # Provided at 25 ms; discovered at the next poll boundary.
    assert result["at"] >= msec(25)
    assert result["polls"] >= 2
    assert process.cpu_time_ns >= msec(result["polls"]) - msec(1)


def test_multiple_waiters_all_wake():
    sim = Simulator()
    paths = PathRegistry(sim)
    woke = []

    def waiter(n):
        yield from paths.wait_for("/shared")
        woke.append(n)

    for n in range(3):
        sim.spawn(waiter(n), name=f"w{n}")
    sim.call_after(1, lambda: paths.provide("/shared"))
    sim.run()
    assert sorted(woke) == [0, 1, 2]
