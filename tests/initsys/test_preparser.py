"""Tests for the Pre-parser cache (§3.3 / Fig. 6(d))."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.presets import emmc_ue48h6200
from repro.initsys.preparser import PreParsedCache, PreParser, dependency_edge_count
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit
from repro.sim import Simulator


def make_registry(units=40, edges_per_unit=3):
    registry = UnitRegistry()
    registry.add(Unit(name="u0.service"))
    for n in range(1, units):
        deps = [f"u{(n - k - 1)}.service" for k in range(min(edges_per_unit, n))]
        registry.add(Unit(name=f"u{n}.service", requires=deps[:1],
                          after=deps[1:2], wants=deps[2:3]))
    return registry


def test_edge_count_counts_all_reference_kinds():
    registry = UnitRegistry([
        Unit(name="a.service", requires=["b.service"], wants=["c.service"],
             before=["d.service"], after=["e.service"], conflicts=["f.service"]),
    ])
    assert dependency_edge_count(registry) == 5


def test_cache_is_smaller_than_text():
    registry = make_registry()
    preparser = PreParser()
    cache = preparser.build_cache(registry)
    assert cache.unit_count == len(registry)
    assert cache.blob_bytes < registry.total_text_bytes()
    assert cache.edge_count == dependency_edge_count(registry)


def load_time(registry, cached):
    sim = Simulator(cores=1, switch_cost_ns=0)
    storage = emmc_ue48h6200().attach(sim)
    preparser = PreParser()

    def loader():
        if cached:
            cache = preparser.build_cache(registry)
            yield from preparser.load_from_cache(sim, cache, storage)
        else:
            yield from preparser.load_from_text(sim, registry, storage)

    sim.spawn(loader(), name="loader")
    sim.run()
    return sim


def test_cache_load_is_much_faster_than_text_load():
    registry = make_registry()
    text_time = load_time(registry, cached=False).now
    cache_time = load_time(registry, cached=True).now
    assert cache_time < text_time / 5


def test_text_load_records_the_two_fig6d_phases():
    sim = load_time(make_registry(), cached=False)
    load_span = sim.tracer.find("init.load-units")
    parse_span = sim.tracer.find("init.parse-deps")
    assert load_span.duration_ns > 0
    assert parse_span.duration_ns > 0


def test_costs_scale_with_unit_count():
    small = make_registry(units=20)
    large = make_registry(units=80)
    preparser = PreParser()
    assert (preparser.text_loading_cpu_ns(large)
            > 3 * preparser.text_loading_cpu_ns(small))
    assert (preparser.text_parsing_cpu_ns(large)
            > 3 * preparser.text_parsing_cpu_ns(small))


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        PreParser(file_op_ns=-1)
    with pytest.raises(ConfigurationError):
        PreParser(cache_compression=0.0)
    with pytest.raises(ConfigurationError):
        PreParser(cache_compression=1.5)


def test_cache_dataclass_holds_figures():
    cache = PreParsedCache(unit_count=10, edge_count=20, blob_bytes=1000)
    assert cache.unit_count == 10


class TestCacheInvalidation:
    """§2.5 dynamicity: a cache built before a service update is stale."""

    def test_fresh_cache_matches(self):
        registry = make_registry()
        cache = PreParser().build_cache(registry)
        assert cache.is_fresh(registry)

    def test_updated_service_invalidates(self):
        registry = make_registry()
        cache = PreParser().build_cache(registry)
        updated = registry.get("u1.service")
        from repro.initsys.units import replace_unit

        clone = replace_unit(updated)
        clone.description = "changed after the cache was built"
        registry.replace(clone)
        assert not cache.is_fresh(registry)

    def test_added_service_invalidates(self):
        registry = make_registry()
        cache = PreParser().build_cache(registry)
        registry.add(Unit(name="new.service"))
        assert not cache.is_fresh(registry)

    def test_fingerprintless_cache_is_never_fresh(self):
        cache = PreParsedCache(unit_count=1, edge_count=0, blob_bytes=10)
        assert not cache.is_fresh(make_registry())

    def test_manager_falls_back_to_text_parse_on_stale_cache(self):
        from repro.initsys.manager import ManagerConfig
        from tests.fixtures import COMPLETION_UNITS, boot_mini_tv, mini_tv_registry

        # Cache built against a DIFFERENT registry: stale by construction.
        stale_cache = PreParser().build_cache(make_registry())
        config = ManagerConfig(completion_units=COMPLETION_UNITS,
                               use_preparser=True)
        sim, manager = boot_mini_tv(config, cache=stale_cache)
        assert any(i.name == "preparser.cache-stale"
                   for i in sim.tracer.instants)
        # The text-parse path ran (its load span carries no cached attr).
        load_span = sim.tracer.find("init.load-units")
        assert "cached" not in load_span.attrs

    def test_manager_uses_fresh_cache(self):
        from repro.initsys.manager import ManagerConfig
        from tests.fixtures import COMPLETION_UNITS, boot_mini_tv

        config = ManagerConfig(completion_units=COMPLETION_UNITS,
                               use_preparser=True)
        sim, manager = boot_mini_tv(config)
        load_span = sim.tracer.find("init.load-units")
        assert load_span.attrs.get("cached") is True
