"""Round-trip tests for the §2.5.2 recovery unit-file keys.

``OnFailure=``, ``StartLimitBurst=``, ``StartLimitIntervalNs=`` and
``RestartBackoffFactor=`` must survive parse -> semantic unit -> render
-> parse unchanged, and invalid values must fail as parse errors, not
deep in the executor.
"""

import pytest

from repro.errors import UnitError, UnitParseError
from repro.initsys.registry import UnitRegistry
from repro.initsys.unitfile import parse_unit_file, render_unit_file
from repro.initsys.units import DEFAULT_START_LIMIT_INTERVAL_NS, Unit

RECOVERY_UNIT_TEXT = """\
[Unit]
Description=flaky daemon with full recovery settings
OnFailure=cleanup.service diagnose.service
StartLimitBurst=4
StartLimitIntervalNs=5000000000

[Service]
Type=notify
Restart=on-failure
RestartBackoffFactor=2.5
"""


def parse_unit(text, name="flaky.service"):
    return Unit.from_parsed(parse_unit_file(text, name=name))


def test_recovery_keys_parse():
    unit = parse_unit(RECOVERY_UNIT_TEXT)
    assert unit.on_failure == ["cleanup.service", "diagnose.service"]
    assert unit.start_limit_burst == 4
    assert unit.start_limit_interval_ns == 5_000_000_000
    assert unit.restart_backoff_factor == 2.5


def test_recovery_keys_round_trip_through_render():
    unit = parse_unit(RECOVERY_UNIT_TEXT)
    rendered = render_unit_file(unit.to_parsed())
    again = parse_unit(rendered)
    assert again.on_failure == unit.on_failure
    assert again.start_limit_burst == unit.start_limit_burst
    assert again.start_limit_interval_ns == unit.start_limit_interval_ns
    assert again.restart_backoff_factor == unit.restart_backoff_factor
    # Idempotent: rendering the re-parsed unit changes nothing.
    assert render_unit_file(again.to_parsed()) == rendered


def test_dump_unit_text_parity():
    unit = parse_unit(RECOVERY_UNIT_TEXT)
    registry = UnitRegistry([unit])
    text = registry.dump_unit_text("flaky.service")
    assert "OnFailure=cleanup.service diagnose.service" in text
    assert "StartLimitBurst=4" in text
    assert "StartLimitIntervalNs=5000000000" in text
    assert "RestartBackoffFactor=2.5" in text


def test_default_values_stay_out_of_rendered_text():
    unit = Unit(name="plain.service")
    rendered = render_unit_file(unit.to_parsed())
    assert "OnFailure" not in rendered
    assert "StartLimitBurst" not in rendered
    assert "StartLimitIntervalNs" not in rendered
    assert "RestartBackoffFactor" not in rendered
    again = parse_unit(rendered, name="plain.service")
    assert again.on_failure == []
    assert again.start_limit_burst == 0
    assert again.start_limit_interval_ns == DEFAULT_START_LIMIT_INTERVAL_NS
    assert again.restart_backoff_factor == 1.0


@pytest.mark.parametrize("text, message", [
    ("[Unit]\nStartLimitBurst=lots\n", "must be an integer"),
    ("[Unit]\nStartLimitBurst=-2\n", "cannot be negative"),
    ("[Unit]\nStartLimitIntervalNs=soon\n", "must be an integer"),
    ("[Unit]\nStartLimitIntervalNs=-1\n", "cannot be negative"),
    ("[Service]\nRestartBackoffFactor=fast\n", "must be a number"),
    ("[Service]\nRestartBackoffFactor=0.5\n", "must be >= 1.0"),
])
def test_invalid_values_raise_parse_errors(text, message):
    with pytest.raises(UnitParseError, match=message):
        parse_unit(text)


def test_unit_cannot_be_its_own_on_failure_handler():
    with pytest.raises(UnitError, match="own OnFailure"):
        Unit(name="a.service", on_failure=["a.service"])


def test_programmatic_backoff_below_one_rejected():
    with pytest.raises(UnitError, match="restart_backoff_factor"):
        Unit(name="a.service", restart_backoff_factor=0.9)
