"""Tests for the unit registry."""

import pytest

from repro.errors import UnitError, UnitNotFoundError
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def make_registry():
    return UnitRegistry([
        Unit(name="a.service"),
        Unit(name="b.service", requires=["a.service"]),
        Unit(name="multi-user.target"),
    ])


def test_add_get_contains_len():
    registry = make_registry()
    assert len(registry) == 3
    assert "a.service" in registry
    assert registry.get("b.service").requires == ["a.service"]


def test_duplicate_add_rejected():
    registry = make_registry()
    with pytest.raises(UnitError, match="duplicate"):
        registry.add(Unit(name="a.service"))


def test_replace_overwrites():
    registry = make_registry()
    registry.replace(Unit(name="a.service", description="updated"))
    assert registry.get("a.service").description == "updated"


def test_remove():
    registry = make_registry()
    registry.remove("a.service")
    assert "a.service" not in registry
    with pytest.raises(UnitNotFoundError):
        registry.remove("a.service")


def test_get_missing_raises():
    with pytest.raises(UnitNotFoundError, match="nope.service"):
        make_registry().get("nope.service")


def test_load_unit_text():
    registry = UnitRegistry()
    unit = registry.load_unit_text("[Service]\nType=oneshot\n", name="x.service")
    assert unit.name == "x.service"
    assert "x.service" in registry


def test_dump_unit_text_round_trips():
    registry = make_registry()
    text = registry.dump_unit_text("b.service")
    fresh = UnitRegistry()
    unit = fresh.load_unit_text(text, name="b.service")
    assert unit.requires == ["a.service"]


def test_apply_install_sections_builds_reverse_wants():
    registry = UnitRegistry([
        Unit(name="multi-user.target"),
        Unit(name="app.service", wanted_by=["multi-user.target"]),
        Unit(name="core.service", required_by=["multi-user.target"]),
        Unit(name="orphan.service", wanted_by=["missing.target"]),
    ])
    registry.apply_install_sections()
    target = registry.get("multi-user.target")
    assert "app.service" in target.wants
    assert "core.service" in target.requires


def test_apply_install_sections_is_idempotent():
    registry = UnitRegistry([
        Unit(name="multi-user.target"),
        Unit(name="app.service", wanted_by=["multi-user.target"]),
    ])
    registry.apply_install_sections()
    registry.apply_install_sections()
    assert registry.get("multi-user.target").wants.count("app.service") == 1


def test_dangling_references_reported():
    registry = UnitRegistry([
        Unit(name="a.service", requires=["ghost.service"], wants=["spirit.service"]),
        Unit(name="b.service", before=["ghost.service"]),  # ordering: legal
    ])
    dangling = registry.dangling_references()
    assert dangling == {"a.service": ["ghost.service", "spirit.service"]}


def test_total_text_bytes_positive():
    assert make_registry().total_text_bytes() > 0


def test_load_directory(tmp_path):
    (tmp_path / "b.service").write_text("[Service]\nType=oneshot\n")
    (tmp_path / "a.mount").write_text("[X-Simulation]\nProvidesPaths=/a\n")
    (tmp_path / "notes.txt").write_text("not a unit")
    (tmp_path / "default.target").write_text("[Unit]\nRequires=b.service\n")
    registry = UnitRegistry()
    loaded = registry.load_directory(tmp_path)
    assert [u.name for u in loaded] == ["a.mount", "b.service", "default.target"]
    assert registry.get("a.mount").provides_paths == ["/a"]
    assert "notes.txt" not in registry


def test_load_directory_reports_parse_errors_with_filename(tmp_path):
    from repro.errors import UnitParseError

    (tmp_path / "broken.service").write_text("[Unit\nbad")
    with pytest.raises(UnitParseError, match="broken.service"):
        UnitRegistry().load_directory(tmp_path)


def test_registry_round_trips_through_a_directory(tmp_path):
    """Dump the mini-TV registry to disk and load it back intact."""
    from tests.fixtures import mini_tv_registry

    source = mini_tv_registry()
    for name in source.names:
        (tmp_path / name).write_text(source.dump_unit_text(name))
    loaded = UnitRegistry()
    loaded.load_directory(tmp_path)
    assert set(loaded.names) == set(source.names)
    for name in source.names:
        assert loaded.get(name).requires == source.get(name).requires
        assert loaded.get(name).cost == source.get(name).cost
