"""Restart-policy semantics: always/on-watchdog, backoff, start limits,
watchdog hygiene, and OnFailure= activation."""

import pytest

from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import JobState, Transaction
from repro.initsys.units import (RestartPolicy, ServiceType, SimCost, Unit,
                                 DEFAULT_START_LIMIT_BURST)
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator


def run_units(units, goal="goal.target", restart_seed=0, restart_jitter=0.0):
    sim = Simulator(cores=4)
    storage = emmc_ue48h6200().attach(sim)
    registry = UnitRegistry(units)
    txn = Transaction(registry, [goal])
    executor = JobExecutor(sim, txn, storage, RCUSubsystem(sim),
                           PathRegistry(sim), restart_seed=restart_seed,
                           restart_jitter=restart_jitter)
    executor.start_all()
    sim.run()
    return sim, txn, executor


def flaky(name="flaky.service", *, fails=0, policy=RestartPolicy.ON_FAILURE,
          delay_ms=10, **kwargs):
    return Unit(name=name, service_type=ServiceType.ONESHOT,
                failures_before_success=fails, restart_policy=policy,
                restart_delay_ns=msec(delay_ms),
                cost=SimCost(init_cpu_ns=msec(1), exec_bytes=0), **kwargs)


def hanging(name="hung.service", *, policy, timeout_ms=20, **kwargs):
    return Unit(name=name, service_type=ServiceType.ONESHOT,
                restart_policy=policy, start_timeout_ns=msec(timeout_ms),
                restart_delay_ns=msec(5),
                cost=SimCost(init_cpu_ns=msec(500), exec_bytes=0), **kwargs)


# ------------------------------------------------------------------ always

def test_always_restarts_past_max_restarts():
    """Restart=always ignores max_restarts; only the start-rate limit
    (the systemd 5-per-10s default) stops it."""
    sim, txn, _ = run_units([
        Unit(name="goal.target", wants=["flaky.service"]),
        flaky(fails=20, policy=RestartPolicy.ALWAYS, max_restarts=1),
    ])
    job = txn.job("flaky.service")
    assert job.state is JobState.FAILED
    assert job.attempts == DEFAULT_START_LIMIT_BURST
    assert "start-limit-hit" in job.failure_reason


def test_always_recovers_within_start_limit():
    sim, txn, _ = run_units([
        Unit(name="goal.target", requires=["flaky.service"]),
        flaky(fails=3, policy=RestartPolicy.ALWAYS, max_restarts=0),
    ])
    job = txn.job("flaky.service")
    assert job.ready_at_ns is not None
    assert job.attempts == 4


def test_always_declared_burst_overrides_default():
    sim, txn, _ = run_units([
        Unit(name="goal.target", wants=["flaky.service"]),
        flaky(fails=20, policy=RestartPolicy.ALWAYS, start_limit_burst=3),
    ])
    assert txn.job("flaky.service").attempts == 3


# -------------------------------------------------------------- on-watchdog

def test_on_watchdog_restarts_after_timeout_only():
    sim, txn, _ = run_units([
        Unit(name="goal.target", wants=["hung.service"]),
        hanging(policy=RestartPolicy.ON_WATCHDOG, max_restarts=2),
    ])
    job = txn.job("hung.service")
    assert job.state is JobState.FAILED
    assert job.attempts == 3  # initial + max_restarts watchdog retries
    assert len(job.restart_delays_ns) == 2


def test_on_watchdog_does_not_restart_after_crash():
    sim, txn, _ = run_units([
        Unit(name="goal.target", wants=["flaky.service"]),
        flaky(fails=1, policy=RestartPolicy.ON_WATCHDOG),
    ])
    job = txn.job("flaky.service")
    assert job.state is JobState.FAILED
    assert job.attempts == 1
    assert job.restart_delays_ns == []


def test_on_failure_restarts_after_both_crash_and_timeout():
    sim, txn, _ = run_units([
        Unit(name="goal.target", wants=["hung.service"]),
        hanging(policy=RestartPolicy.ON_FAILURE, max_restarts=1),
    ])
    assert txn.job("hung.service").attempts == 2


# --------------------------------------------------------- watchdog hygiene

def test_watchdog_cancelled_on_successful_attempt():
    """A successful start must cancel its JobTimeout: the run goes
    quiescent immediately, with no stray event left to fire at the
    timeout horizon."""
    timeout_ms = 10_000
    sim, txn, _ = run_units([
        Unit(name="goal.target", requires=["fine.service"]),
        Unit(name="fine.service", service_type=ServiceType.ONESHOT,
             start_timeout_ns=msec(timeout_ms),
             cost=SimCost(init_cpu_ns=msec(2), exec_bytes=0)),
    ])
    assert txn.job("fine.service").ready_at_ns is not None
    assert sim.now < msec(timeout_ms)  # nothing waited for the watchdog
    assert len(sim.events) == 0  # no live events at quiescence


def test_watchdog_cancelled_on_each_restart_attempt():
    sim, txn, _ = run_units([
        Unit(name="goal.target", requires=["flaky.service"]),
        flaky(fails=2, start_timeout_ns=msec(60_000)),
    ])
    job = txn.job("flaky.service")
    assert job.attempts == 3
    assert job.ready_at_ns is not None
    assert sim.now < msec(60_000)
    assert len(sim.events) == 0


# ------------------------------------------------------- backoff and jitter

def test_exponential_backoff_delays():
    sim, txn, _ = run_units([
        Unit(name="goal.target", requires=["flaky.service"]),
        flaky(fails=3, delay_ms=10, restart_backoff_factor=2.0),
    ])
    assert txn.job("flaky.service").restart_delays_ns == [
        msec(10), msec(20), msec(40)]


def test_constant_delay_without_backoff_factor():
    sim, txn, _ = run_units([
        Unit(name="goal.target", requires=["flaky.service"]),
        flaky(fails=2, delay_ms=10),
    ])
    assert txn.job("flaky.service").restart_delays_ns == [msec(10), msec(10)]


def units_for_jitter():
    return [Unit(name="goal.target", requires=["flaky.service"]),
            flaky(fails=3, delay_ms=10, restart_backoff_factor=2.0)]


def test_jitter_is_seed_deterministic():
    _, txn_a, _ = run_units(units_for_jitter(), restart_seed=7,
                            restart_jitter=0.5)
    _, txn_b, _ = run_units(units_for_jitter(), restart_seed=7,
                            restart_jitter=0.5)
    delays_a = txn_a.job("flaky.service").restart_delays_ns
    delays_b = txn_b.job("flaky.service").restart_delays_ns
    assert delays_a == delays_b
    assert delays_a != [msec(10), msec(20), msec(40)]  # jitter moved them
    # Every delay stays within +/- 50% of the backoff schedule.
    for delay, base in zip(delays_a, (msec(10), msec(20), msec(40))):
        assert 0.5 * base <= delay <= 1.5 * base


def test_jitter_varies_with_seed():
    _, txn_a, _ = run_units(units_for_jitter(), restart_seed=1,
                            restart_jitter=0.5)
    _, txn_b, _ = run_units(units_for_jitter(), restart_seed=2,
                            restart_jitter=0.5)
    assert (txn_a.job("flaky.service").restart_delays_ns
            != txn_b.job("flaky.service").restart_delays_ns)


# -------------------------------------------------------------- start limit

def test_start_limit_caps_on_failure_restarts():
    sim, txn, _ = run_units([
        Unit(name="goal.target", wants=["flaky.service"]),
        flaky(fails=10, max_restarts=9, start_limit_burst=2),
    ])
    job = txn.job("flaky.service")
    assert job.state is JobState.FAILED
    assert job.attempts == 2
    assert "start-limit-hit" in job.failure_reason


def test_start_limit_window_forgets_old_starts():
    """Starts older than the interval fall out of the window, so slow
    restart cadences are not rate-limited."""
    sim, txn, _ = run_units([
        Unit(name="goal.target", requires=["flaky.service"]),
        flaky(fails=4, max_restarts=10, delay_ms=50, start_limit_burst=2,
              start_limit_interval_ns=msec(40)),
    ])
    job = txn.job("flaky.service")
    assert job.ready_at_ns is not None
    assert job.attempts == 5


# ---------------------------------------------------------------- OnFailure

def test_on_failure_unit_activated_when_job_fails():
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["flaky.service"]),
        flaky(fails=10, max_restarts=0, on_failure=["cleanup.service"]),
        Unit(name="cleanup.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(1), exec_bytes=0)),
    ])
    assert executor.on_failure_activated == [
        ("flaky.service", "cleanup.service")]
    handler = txn.job("cleanup.service")
    assert handler.ready_at_ns is not None
    sim.tracer.find_instant("cleanup.service.on-failure-activated")


def test_on_failure_handler_not_pulled_by_goal():
    """The handler enters the transaction only when its trigger fails."""
    sim, txn, executor = run_units([
        Unit(name="goal.target", requires=["fine.service"]),
        Unit(name="fine.service", service_type=ServiceType.ONESHOT,
             on_failure=["cleanup.service"],
             cost=SimCost(init_cpu_ns=msec(1), exec_bytes=0)),
        Unit(name="cleanup.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(1), exec_bytes=0)),
    ])
    assert executor.on_failure_activated == []
    assert "cleanup.service" not in txn.jobs


def test_missing_on_failure_handler_is_tolerated():
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["flaky.service"]),
        flaky(fails=10, max_restarts=0, on_failure=["ghost.service"]),
    ])
    assert txn.job("flaky.service").state is JobState.FAILED
    assert executor.on_failure_activated == []
    sim.tracer.find_instant("ghost.service.on-failure-missing")
