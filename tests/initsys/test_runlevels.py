"""Tests for the Advanced Boot Script (run-levels) baseline."""

import pytest

from repro.hw.presets import ue48h6200
from repro.initsys.registry import UnitRegistry
from repro.initsys.runlevels import AdvancedBootScript
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator
from tests.fixtures import COMPLETION_UNITS, mini_tv_registry
from tests.initsys.test_baselines import run_parallel_in_order


def run_abs(registry=None, goal="multi-user.target",
            completion=COMPLETION_UNITS, cores=4):
    sim = Simulator(cores=cores)
    platform = ue48h6200().attach(sim)
    scheme = AdvancedBootScript(sim, registry or mini_tv_registry(),
                                platform.storage, RCUSubsystem(sim),
                                goal=goal, completion_units=completion)
    scheme.spawn()
    sim.run()
    return sim, scheme


def test_levels_follow_dependency_depth():
    _, scheme = run_abs()
    level_of = {name: i for i, level in enumerate(scheme.levels)
                for name in level}
    assert level_of["var.mount"] < level_of["dbus.service"]
    assert level_of["dbus.service"] < level_of["tuner.service"]
    assert level_of["tuner.service"] < level_of["fasttv.service"]


def test_boot_completes_correctly():
    _, scheme = run_abs()
    assert scheme.boot_complete_ns is not None
    fasttv = scheme.transaction.job("fasttv.service")
    tuner = scheme.transaction.job("tuner.service")
    assert fasttv.started_at_ns >= tuner.ready_at_ns


def test_parallel_within_a_level():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=[f"s{i}.service" for i in range(4)]),
        *[Unit(name=f"s{i}.service", service_type=ServiceType.ONESHOT,
               cost=SimCost(init_cpu_ns=msec(20), exec_bytes=0))
          for i in range(4)],
    ])
    sim, scheme = run_abs(registry, goal="goal.target",
                          completion=("s0.service",))
    # All four are in the same level: 4 x 20 ms on 4 cores ~ 20 ms.
    level_of = {name: i for i, level in enumerate(scheme.levels)
                for name in level}
    assert len({level_of[f"s{i}.service"] for i in range(4)}) == 1
    assert sim.now < msec(45)


def test_barrier_blocks_across_levels():
    """The paper's ABS limitation: a fast unit in level N+1 waits for the
    slowest unit of level N even without any dependency between them."""
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["fast.service", "slow.service",
                                           "next.service"]),
        Unit(name="slow.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(100), exec_bytes=0)),
        Unit(name="fast.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(5), exec_bytes=0)),
        # next depends only on fast, but shares a level with nothing: its
        # level is max(depth)+1 so it waits for slow too.
        Unit(name="next.service", service_type=ServiceType.ONESHOT,
             requires=["fast.service"],
             cost=SimCost(init_cpu_ns=msec(5), exec_bytes=0)),
    ])
    _, scheme = run_abs(registry, goal="goal.target",
                        completion=("next.service",))
    slow_ready = scheme.transaction.job("slow.service").ready_at_ns
    next_started = scheme.transaction.job("next.service").started_at_ns
    assert next_started >= slow_ready


def test_slower_than_full_parallel_in_order():
    """systemd's removal of run-levels is a real win on the same set."""
    _, scheme = run_abs()
    systemd_like = run_parallel_in_order()
    assert systemd_like < scheme.boot_complete_ns


def test_deterministic():
    _, a = run_abs()
    _, b = run_abs()
    assert a.boot_complete_ns == b.boot_complete_ns
    assert a.levels == b.levels
