"""Tests for the shutdown sequencer."""

import pytest

from repro.initsys.registry import UnitRegistry
from repro.initsys.shutdown import ShutdownSequencer
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.quantities import msec
from repro.sim import Simulator
from tests.fixtures import mini_tv_registry


def run_shutdown(registry, goal="multi-user.target", running=None):
    sim = Simulator(cores=4)
    sequencer = ShutdownSequencer(sim, registry, goal=goal)
    sequencer.spawn(running)
    sim.run()
    return sim, sequencer.report


def test_reverse_dependency_order():
    """dbus stops only after everything that required it has stopped."""
    sim, report = run_shutdown(mini_tv_registry())
    order = report.stop_order
    assert order.index("fasttv.service") < order.index("tuner.service")
    assert order.index("tuner.service") < order.index("dbus.service")
    assert order.index("dbus.service") < order.index("var.mount")


def test_all_units_stopped():
    registry = mini_tv_registry()
    _, report = run_shutdown(registry)
    # Everything but the target stops.
    assert report.stopped == len(registry) - 1


def test_independent_units_stop_in_parallel():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=[f"s{i}.service" for i in range(4)]),
        *[Unit(name=f"s{i}.service",
               cost=SimCost(stop_ns=msec(10), exec_bytes=0))
          for i in range(4)],
    ])
    sim, report = run_shutdown(registry, goal="goal.target")
    # Four 10 ms stops on 4 cores: parallel, so ~10 ms not ~40 ms.
    assert report.duration_ns < msec(20)


def test_dependent_chain_stops_serially():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["c.service"]),
        Unit(name="a.service", cost=SimCost(stop_ns=msec(10), exec_bytes=0)),
        Unit(name="b.service", requires=["a.service"],
             cost=SimCost(stop_ns=msec(10), exec_bytes=0)),
        Unit(name="c.service", requires=["b.service"],
             cost=SimCost(stop_ns=msec(10), exec_bytes=0)),
    ])
    sim, report = run_shutdown(registry, goal="goal.target")
    assert report.stop_order == ["c.service", "b.service", "a.service"]
    assert report.duration_ns >= msec(30)


def test_subset_of_running_units():
    registry = mini_tv_registry()
    _, report = run_shutdown(registry,
                             running=["fasttv.service", "dbus.service"])
    assert set(report.stop_order) == {"fasttv.service", "dbus.service"}
    assert report.stop_order[0] == "fasttv.service"


def test_shutdown_is_deterministic():
    _, a = run_shutdown(mini_tv_registry())
    _, b = run_shutdown(mini_tv_registry())
    assert a.stop_order == b.stop_order
    assert a.duration_ns == b.duration_ns


def test_hibernation_shutdown_story():
    """§2.1: a hibernating TV pays shutdown + snapshot creation — the
    window in which unplugging corrupts the image."""
    from repro.hw.presets import ue48h6200
    from repro.kernel.snapshot import HibernationModel

    _, report = run_shutdown(mini_tv_registry())
    snapshot_ns = HibernationModel().create_time_ns(ue48h6200())
    total = report.duration_ns + snapshot_ns
    # The vulnerable window dwarfs BB's whole 3.5 s cold boot.
    assert total > 4 * 3_500_000_000 / 4  # > 3.5 s
