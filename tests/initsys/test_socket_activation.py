"""Tests for socket-activation (buffered-IPC) semantics."""

import pytest

from repro.experiments import socket_activation
from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import Transaction
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator


def run_units(units, goal="goal.target"):
    sim = Simulator(cores=4)
    storage = emmc_ue48h6200().attach(sim)
    registry = UnitRegistry(units)
    txn = Transaction(registry, [goal])
    executor = JobExecutor(sim, txn, storage, RCUSubsystem(sim),
                           PathRegistry(sim))
    executor.start_all()
    sim.run()
    return sim, txn


def test_client_launches_before_provider_is_ready():
    """The client's exec happens while the daemon still initializes."""
    sim, txn = run_units([
        Unit(name="goal.target", requires=["daemon.service", "client.service"]),
        Unit(name="daemon.service", service_type=ServiceType.NOTIFY,
             cost=SimCost(init_cpu_ns=msec(100), exec_bytes=0)),
        Unit(name="client.service", service_type=ServiceType.NOTIFY,
             ipc_targets=["daemon.service"],
             cost=SimCost(init_cpu_ns=msec(20), exec_bytes=0)),
    ])
    client = txn.job("client.service")
    daemon = txn.job("daemon.service")
    assert client.started_at_ns < daemon.ready_at_ns


def test_clients_first_ipc_blocks_until_provider_ready():
    sim, txn = run_units([
        Unit(name="goal.target", requires=["daemon.service", "client.service"]),
        Unit(name="daemon.service", service_type=ServiceType.NOTIFY,
             cost=SimCost(init_cpu_ns=msec(100), exec_bytes=0)),
        Unit(name="client.service", service_type=ServiceType.NOTIFY,
             ipc_targets=["daemon.service"],
             cost=SimCost(init_cpu_ns=msec(10), exec_bytes=0)),
    ])
    client = txn.job("client.service")
    daemon = txn.job("daemon.service")
    # The client cannot be ready before the daemon it calls into.
    assert client.ready_at_ns >= daemon.ready_at_ns


def test_ipc_to_already_ready_provider_is_free():
    sim, txn = run_units([
        Unit(name="goal.target", requires=["daemon.service", "late.service"]),
        Unit(name="daemon.service", service_type=ServiceType.NOTIFY,
             cost=SimCost(init_cpu_ns=msec(5), exec_bytes=0)),
        Unit(name="late.service", service_type=ServiceType.NOTIFY,
             after=["daemon.service"], ipc_targets=["daemon.service"],
             cost=SimCost(init_cpu_ns=msec(10), exec_bytes=0)),
    ])
    late = txn.job("late.service")
    # Only its own work: no extra blocking beyond ordering.
    assert late.ready_at_ns - late.started_at_ns <= msec(12)


def test_ipc_target_outside_transaction_ignored():
    sim, txn = run_units([
        Unit(name="goal.target", requires=["client.service"]),
        Unit(name="client.service", service_type=ServiceType.NOTIFY,
             ipc_targets=["ghost.service"],
             cost=SimCost(init_cpu_ns=msec(10), exec_bytes=0)),
    ])
    assert txn.job("client.service").ready_at_ns is not None


def test_ipc_targets_round_trip_through_unit_file():
    from repro.initsys.unitfile import parse_unit_file, render_unit_file

    unit = Unit(name="c.service", ipc_targets=["dbus.service"])
    back = Unit.from_parsed(parse_unit_file(render_unit_file(unit.to_parsed()),
                                            name="c.service"))
    assert back.ipc_targets == ["dbus.service"]


def test_experiment_shape():
    result = socket_activation.run()
    assert result.activated_all_up_ms < result.ordered_all_up_ms
    assert "socket" in socket_activation.render(result)
