"""Tests for the Fig. 6(b)/(c) manager task lists."""

import pytest

from repro.errors import UnitError
from repro.initsys.startup_tasks import (STARTUP_TASKS, SUBMODULE_TASKS,
                                         StartupTask, core_startup_cost_ns,
                                         deferrable_startup_cost_ns,
                                         submodule_cost_ns)
from repro.quantities import msec
from repro.sim import Simulator


def test_fig6b_deferrable_costs_match_paper():
    """Fig. 6(b): logging 28, kernel module 28, hostname 13, machine ID 9,
    loopback 17, test directory 29 — 124 ms deferred in total."""
    expected = {
        "enable-logging-scheme": msec(28),
        "setup-kernel-module": msec(28),
        "setup-hostname": msec(13),
        "setup-machine-id": msec(9),
        "setup-loopback-device": msec(17),
        "test-directory": msec(29),
    }
    deferrable = {t.name: t.cpu_ns for t in STARTUP_TASKS if t.deferrable}
    assert deferrable == expected
    assert deferrable_startup_cost_ns() == msec(124)


def test_fig6b_core_cost_is_71ms():
    """195 ms (no BB) - 124 ms deferred = 71 ms that BB still pays."""
    assert core_startup_cost_ns() == msec(71)
    assert core_startup_cost_ns() + deferrable_startup_cost_ns() == msec(195)


def test_fig6c_submodules_total_496ms():
    """Deferred Executor's Fig. 6(c) saving."""
    assert submodule_cost_ns() == msec(496)
    assert all(t.deferrable for t in SUBMODULE_TASKS)


def test_task_run_consumes_cpu():
    sim = Simulator(cores=1, switch_cost_ns=0)
    task = StartupTask("t", cpu_ns=msec(5), deferrable=False)
    sim.spawn(task.run(sim), name="t")
    sim.run()
    assert sim.now == msec(5)
    assert sim.tracer.find("init.t").duration_ns == msec(5)


def test_negative_cost_rejected():
    with pytest.raises(UnitError):
        StartupTask("bad", cpu_ns=-1, deferrable=False)
