"""Tests for the JobTimeout watchdog on service starts."""

import pytest

from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import JobState, Transaction
from repro.initsys.units import RestartPolicy, ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator


def run_units(units, goal="goal.target"):
    sim = Simulator(cores=4)
    storage = emmc_ue48h6200().attach(sim)
    registry = UnitRegistry(units)
    txn = Transaction(registry, [goal])
    executor = JobExecutor(sim, txn, storage, RCUSubsystem(sim),
                           PathRegistry(sim))
    executor.start_all()
    sim.run()
    return sim, txn, executor


def slow_unit(name, init_ms=500, timeout_ms=50, **kwargs):
    kwargs.setdefault("restart_policy", RestartPolicy.NO)
    return Unit(name=name, service_type=ServiceType.ONESHOT,
                start_timeout_ns=msec(timeout_ms),
                cost=SimCost(init_cpu_ns=msec(init_ms), exec_bytes=0),
                **kwargs)


def test_hung_start_is_timed_out_and_failed():
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["hung.service"]),
        slow_unit("hung.service"),
    ])
    job = txn.job("hung.service")
    assert job.state is JobState.FAILED
    assert "hung.service" in executor.failed_jobs
    # The boot did not wait for the full 500 ms of work.
    assert sim.now < msec(300)


def test_fast_start_unaffected_by_watchdog():
    sim, txn, executor = run_units([
        Unit(name="goal.target", requires=["fine.service"]),
        slow_unit("fine.service", init_ms=10, timeout_ms=500),
    ])
    assert txn.job("fine.service").state is JobState.DONE
    assert executor.failed_jobs == []


def test_timeout_with_restart_retries():
    """A timed-out attempt counts as a failure, so Restart= applies; the
    unit keeps timing out and eventually fails permanently."""
    sim, txn, executor = run_units([
        Unit(name="goal.target", wants=["hung.service"]),
        slow_unit("hung.service", restart_policy=RestartPolicy.ON_FAILURE,
                  max_restarts=2, restart_delay_ns=msec(5)),
    ])
    job = txn.job("hung.service")
    assert job.state is JobState.FAILED
    assert job.attempts == 3


def test_timeout_releases_storage_channel():
    """The timed-out unit was mid-read; the channel must be usable by the
    next service."""
    sim, txn, executor = run_units([
        Unit(name="goal.target", requires=["reader.service"],
             wants=["hung.service"]),
        # Hung during a long storage read (1 MiB at 37 MiB/s ~ 28 ms > timeout).
        Unit(name="hung.service", service_type=ServiceType.ONESHOT,
             start_timeout_ns=msec(10),
             cost=SimCost(exec_bytes=1024 * 1024, init_cpu_ns=msec(500))),
        Unit(name="reader.service", service_type=ServiceType.ONESHOT,
             after=["hung.service"],
             cost=SimCost(exec_bytes=512 * 1024, init_cpu_ns=msec(1))),
    ])
    assert txn.job("reader.service").state is JobState.DONE


def test_no_timeout_means_infinite_patience():
    sim, txn, executor = run_units([
        Unit(name="goal.target", requires=["slow.service"]),
        Unit(name="slow.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(400), exec_bytes=0)),
    ])
    assert txn.job("slow.service").state is JobState.DONE
    assert sim.now >= msec(400)


def test_timeout_round_trips_through_unit_file():
    from repro.initsys.unitfile import parse_unit_file, render_unit_file

    unit = slow_unit("t.service", timeout_ms=75)
    back = Unit.from_parsed(parse_unit_file(render_unit_file(unit.to_parsed()),
                                            name="t.service"))
    assert back.start_timeout_ns == msec(75)
