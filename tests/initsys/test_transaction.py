"""Tests for transaction building: closure, edges, conflicts, cycles."""

import pytest

from repro.errors import (DependencyCycleError, TransactionError,
                          UnitNotFoundError)
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import EdgeKind, Transaction
from repro.initsys.units import Unit


def test_closure_pulls_requires_and_wants():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["a.service"], wants=["b.service"]),
        Unit(name="a.service", requires=["c.service"]),
        Unit(name="b.service"),
        Unit(name="c.service"),
        Unit(name="unrelated.service"),
    ])
    txn = Transaction(registry, ["goal.target"])
    assert set(txn.jobs) == {"goal.target", "a.service", "b.service", "c.service"}
    assert "unrelated.service" not in txn


def test_weak_pull_marks_jobs():
    registry = UnitRegistry([
        Unit(name="goal.target", wants=["w.service"], requires=["r.service"]),
        Unit(name="w.service"),
        Unit(name="r.service"),
    ])
    txn = Transaction(registry, ["goal.target"])
    assert not txn.job("w.service").pulled_strongly
    assert txn.job("r.service").pulled_strongly


def test_strong_pull_upgrades_weak():
    registry = UnitRegistry([
        Unit(name="goal.target", wants=["x.service"], requires=["y.service"]),
        Unit(name="x.service"),
        Unit(name="y.service", requires=["x.service"]),
    ])
    txn = Transaction(registry, ["goal.target"])
    assert txn.job("x.service").pulled_strongly


def test_missing_required_unit_raises():
    registry = UnitRegistry([Unit(name="goal.target", requires=["ghost.service"])])
    with pytest.raises(UnitNotFoundError):
        Transaction(registry, ["goal.target"])


def test_missing_wanted_unit_ignored():
    registry = UnitRegistry([Unit(name="goal.target", wants=["ghost.service"])])
    txn = Transaction(registry, ["goal.target"])
    assert set(txn.jobs) == {"goal.target"}


def test_edges_from_all_dependency_kinds():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"], wants=["w.service"],
             after=["ord.service"]),
        Unit(name="a.service", before=["b.service"]),
        Unit(name="w.service"),
        Unit(name="ord.service"),
    ])
    # Pull ord.service in via the goal so the After edge materializes.
    registry.get("goal.target").wants.append("ord.service")
    txn = Transaction(registry, ["goal.target"])
    kinds = {(e.predecessor, e.successor): e.kind for e in txn.edges}
    assert kinds[("a.service", "b.service")] is EdgeKind.STRONG  # Requires+Before
    assert kinds[("w.service", "b.service")] is EdgeKind.WEAK  # Wants
    assert kinds[("ord.service", "b.service")] is EdgeKind.STRONG  # After
    assert kinds[("b.service", "goal.target")] is EdgeKind.STRONG


def test_ordering_to_units_outside_transaction_dropped():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["a.service"]),
        Unit(name="a.service", after=["outsider.service"]),
        Unit(name="outsider.service"),
    ])
    txn = Transaction(registry, ["goal.target"])
    assert all(e.predecessor != "outsider.service" for e in txn.edges)


def test_conflicting_jobs_rejected():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["a.service", "b.service"]),
        Unit(name="a.service", conflicts=["b.service"]),
        Unit(name="b.service"),
    ])
    with pytest.raises(TransactionError, match="conflict"):
        Transaction(registry, ["goal.target"])


def test_strong_cycle_is_fatal():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["a.service"]),
        Unit(name="a.service", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
    ])
    with pytest.raises(DependencyCycleError):
        Transaction(registry, ["goal.target"])


def test_weak_cycle_broken_by_dropping_wanted_job():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["a.service"], wants=["b.service"]),
        Unit(name="a.service", after=["b.service"]),
        Unit(name="b.service", after=["a.service"]),
    ])
    txn = Transaction(registry, ["goal.target"])
    assert "b.service" not in txn
    assert txn.dropped_jobs == ["b.service"]
    assert "a.service" in txn


def test_fig3_scenario_new_service_creates_cycle_between_groups():
    """The paper's Fig. 3: adding service c (group a) required by service a
    (group b) while group b's tail orders before group a's head closes a
    cycle across the groups."""
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["svc-a.service", "svc-b.service",
                                           "svc-c.service"]),
        # group b: a -> b chain
        Unit(name="svc-a.service", requires=["svc-c.service"]),
        Unit(name="svc-b.service", after=["svc-a.service"]),
        # group a: new service c must run after group b's tail
        Unit(name="svc-c.service", after=["svc-b.service"]),
    ])
    with pytest.raises(DependencyCycleError):
        Transaction(registry, ["goal.target"])


def test_predecessors_query():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"]),
        Unit(name="a.service"),
    ])
    txn = Transaction(registry, ["goal.target"])
    preds = txn.predecessors("b.service")
    assert [(e.predecessor, e.kind) for e in preds] == [("a.service", EdgeKind.STRONG)]


def test_job_lookup_outside_transaction_rejected():
    registry = UnitRegistry([Unit(name="goal.target")])
    txn = Transaction(registry, ["goal.target"])
    with pytest.raises(TransactionError):
        txn.job("nope.service")


def test_duplicate_edges_deduplicated():
    registry = UnitRegistry([
        Unit(name="goal.target", requires=["b.service"]),
        Unit(name="b.service", requires=["a.service"], after=["a.service"]),
        Unit(name="a.service"),
    ])
    txn = Transaction(registry, ["goal.target"])
    strong_ab = [e for e in txn.edges
                 if e.predecessor == "a.service" and e.successor == "b.service"]
    assert len(strong_ab) == 1
