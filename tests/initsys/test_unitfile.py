"""Tests for the unit-file parser (Listing 1 syntax)."""

import pytest

from repro.errors import UnitParseError
from repro.initsys.unitfile import parse_unit_file, render_unit_file

LISTING_1 = """\
[Unit]
Description=Summarized explanation of Myapp.service
Before=socket.service

[Service]
Type=oneshot
ExecStart=/usr/bin/myapp-service-daemon

[Install]
WantedBy=multi-user.target
"""


def test_parses_the_papers_listing_1():
    parsed = parse_unit_file(LISTING_1, name="Myapp.service")
    assert parsed.get("Unit", "Description") == "Summarized explanation of Myapp.service"
    assert parsed.get_list("Unit", "Before") == ["socket.service"]
    assert parsed.get("Service", "Type") == "oneshot"
    assert parsed.get("Service", "ExecStart") == "/usr/bin/myapp-service-daemon"
    assert parsed.get_list("Install", "WantedBy") == ["multi-user.target"]


def test_comments_and_blank_lines_ignored():
    text = "# comment\n; other comment\n\n[Unit]\n# inner\nDescription=x\n"
    parsed = parse_unit_file(text)
    assert parsed.get("Unit", "Description") == "x"


def test_list_keys_accumulate_across_assignments():
    text = "[Unit]\nRequires=a.service\nRequires=b.service c.service\n"
    parsed = parse_unit_file(text)
    assert parsed.get_list("Unit", "Requires") == ["a.service", "b.service", "c.service"]


def test_empty_assignment_resets_list():
    text = "[Unit]\nRequires=a.service\nRequires=\nRequires=b.service\n"
    parsed = parse_unit_file(text)
    assert parsed.get_list("Unit", "Requires") == ["b.service"]


def test_scalar_keys_keep_last_value():
    text = "[Service]\nType=simple\nType=oneshot\n"
    parsed = parse_unit_file(text)
    assert parsed.get("Service", "Type") == "oneshot"


def test_backslash_continuation():
    text = "[Unit]\nRequires=a.service \\\n    b.service\n"
    parsed = parse_unit_file(text)
    assert parsed.get_list("Unit", "Requires") == ["a.service", "b.service"]


def test_dangling_continuation_rejected():
    with pytest.raises(UnitParseError, match="dangling"):
        parse_unit_file("[Unit]\nRequires=a.service \\\n")


def test_assignment_outside_section_rejected():
    with pytest.raises(UnitParseError, match="outside any section"):
        parse_unit_file("Description=x\n")


def test_malformed_section_rejected():
    with pytest.raises(UnitParseError, match="malformed section"):
        parse_unit_file("[Unit\nDescription=x\n")


def test_missing_equals_rejected():
    with pytest.raises(UnitParseError, match="Key=Value"):
        parse_unit_file("[Unit]\njust words\n")


def test_empty_key_rejected():
    with pytest.raises(UnitParseError, match="empty key"):
        parse_unit_file("[Unit]\n=value\n")


def test_error_carries_location():
    try:
        parse_unit_file("[Unit]\nbroken line\n", name="dbus.service")
    except UnitParseError as exc:
        assert exc.filename == "dbus.service"
        assert exc.lineno == 2
    else:
        pytest.fail("expected UnitParseError")


def test_byte_and_line_counts():
    parsed = parse_unit_file(LISTING_1, name="Myapp.service")
    assert parsed.byte_count == len(LISTING_1.encode())
    assert parsed.line_count == LISTING_1.count("\n")


def test_render_round_trips():
    parsed = parse_unit_file(LISTING_1, name="Myapp.service")
    rendered = render_unit_file(parsed)
    reparsed = parse_unit_file(rendered, name="Myapp.service")
    assert reparsed.sections == parsed.sections


def test_value_with_equals_sign_preserved():
    parsed = parse_unit_file("[Service]\nEnvironment=FOO=bar\n")
    assert parsed.get("Service", "Environment") == "FOO=bar"
