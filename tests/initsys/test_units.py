"""Tests for the semantic unit model."""

import pytest

from repro.errors import UnitError, UnitParseError
from repro.initsys.unitfile import parse_unit_file
from repro.initsys.units import ServiceType, SimCost, Unit, UnitType


def test_unit_type_from_name():
    assert UnitType.from_name("dbus.service") is UnitType.SERVICE
    assert UnitType.from_name("var.mount") is UnitType.MOUNT
    assert UnitType.from_name("multi-user.target") is UnitType.TARGET
    assert UnitType.from_name("dbus.socket") is UnitType.SOCKET


def test_unknown_suffix_rejected():
    with pytest.raises(UnitError, match="unknown unit type"):
        Unit(name="foo.banana")


def test_self_dependency_rejected():
    with pytest.raises(UnitError, match="depends on itself"):
        Unit(name="a.service", requires=["a.service"])


def test_daemon_detection():
    assert Unit(name="d.service", service_type=ServiceType.SIMPLE).is_daemon
    assert not Unit(name="o.service", service_type=ServiceType.ONESHOT).is_daemon
    assert not Unit(name="v.mount").is_daemon


def test_from_parsed_reads_dependencies_and_simulation_section():
    text = """\
[Unit]
Description=IPC daemon
Requires=var.mount
After=var.mount
Wants=log.service
Before=app.service

[Service]
Type=notify

[Install]
WantedBy=multi-user.target

[X-Simulation]
InitCpuNs=5000000
RcuSyncs=2
Processes=3
StaticBuild=yes
ProvidesPaths=/run/dbus
"""
    unit = Unit.from_parsed(parse_unit_file(text, name="dbus.service"))
    assert unit.requires == ["var.mount"]
    assert unit.after == ["var.mount"]
    assert unit.wants == ["log.service"]
    assert unit.before == ["app.service"]
    assert unit.service_type is ServiceType.NOTIFY
    assert unit.cost.init_cpu_ns == 5_000_000
    assert unit.cost.rcu_syncs == 2
    assert unit.cost.processes == 3
    assert unit.static_build
    assert unit.provides_paths == ["/run/dbus"]
    assert unit.wanted_by == ["multi-user.target"]


def test_from_parsed_invalid_type_rejected():
    text = "[Service]\nType=bogus\n"
    with pytest.raises(UnitParseError, match="invalid Type"):
        Unit.from_parsed(parse_unit_file(text, name="x.service"))


def test_from_parsed_invalid_simulation_value_rejected():
    text = "[X-Simulation]\nInitCpuNs=soon\n"
    with pytest.raises(UnitParseError, match="must be an integer"):
        Unit.from_parsed(parse_unit_file(text, name="x.service"))


def test_condition_path_extracted():
    text = "[Unit]\nConditionPathExists=/var/lib/flag\n"
    unit = Unit.from_parsed(parse_unit_file(text, name="x.service"))
    assert unit.condition_paths == ["/var/lib/flag"]


def test_to_parsed_round_trips():
    unit = Unit(name="tuner.service", description="Tuner",
                service_type=ServiceType.FORKING,
                requires=["dbus.service"], after=["dbus.service"],
                cost=SimCost(init_cpu_ns=7_000_000, rcu_syncs=1),
                provides_paths=["/dev/tuner0"], static_build=True)
    round_tripped = Unit.from_parsed(unit.to_parsed())
    assert round_tripped.name == unit.name
    assert round_tripped.requires == unit.requires
    assert round_tripped.service_type is unit.service_type
    assert round_tripped.cost == unit.cost
    assert round_tripped.static_build == unit.static_build
    assert round_tripped.provides_paths == unit.provides_paths


def test_with_cost_replaces_fields():
    unit = Unit(name="a.service")
    tweaked = unit.with_cost(init_cpu_ns=123, rcu_syncs=9)
    assert tweaked.cost.init_cpu_ns == 123
    assert tweaked.cost.rcu_syncs == 9
    assert unit.cost.rcu_syncs == 0  # original untouched


def test_simcost_validation():
    with pytest.raises(UnitError):
        SimCost(init_cpu_ns=-1)
    with pytest.raises(UnitError):
        SimCost(processes=0)
