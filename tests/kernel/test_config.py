"""Tests for kernel configuration and the §2.4 optimization arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.config import DEBUG_FEATURE_COST_NS, DebugFeature, KernelConfig
from repro.quantities import msec


def test_commercial_kernel_has_no_diagnostics():
    config = KernelConfig.commercial()
    assert config.diagnostics_cost_ns() == 0
    assert config.driver_cost_ns() == 0
    assert config.extra_cost_ns() == config.base_cost_ns


def test_unoptimized_kernel_pays_for_everything():
    config = KernelConfig.unoptimized()
    assert config.diagnostics_cost_ns() == sum(DEBUG_FEATURE_COST_NS.values())
    assert config.driver_cost_ns() == config.eager_driver_cost_ns


def test_unoptimized_minus_commercial_matches_section_2_4():
    """§2.4: conventional optimization took the kernel from 6.127 s to
    0.698 s, i.e. removed 5.429 s of diagnostics + eager-driver work."""
    saved = (KernelConfig.unoptimized().extra_cost_ns()
             - KernelConfig.commercial().extra_cost_ns())
    assert saved == msec(6127 - 698)


def test_single_feature_costs_add_up():
    config = KernelConfig(debug_features=frozenset({DebugFeature.TRACING,
                                                    DebugFeature.LOGGING}))
    assert config.diagnostics_cost_ns() == (DEBUG_FEATURE_COST_NS[DebugFeature.TRACING]
                                            + DEBUG_FEATURE_COST_NS[DebugFeature.LOGGING])


def test_negative_costs_rejected():
    with pytest.raises(ConfigurationError):
        KernelConfig(base_cost_ns=-1)
    with pytest.raises(ConfigurationError):
        KernelConfig(eager_driver_cost_ns=-1)
