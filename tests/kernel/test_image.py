"""Tests for kernel image loading and the §2.3 compression model."""

import pytest

from repro.errors import KernelError
from repro.hw.presets import emmc_ue48h6200, ufs_galaxy_s6
from repro.hw.storage import StorageDevice
from repro.kernel.image import KernelImage, compression_crossover_bps
from repro.quantities import MiB, msec, sec


def test_uncompressed_load_is_sequential_read():
    image = KernelImage(size_bytes=MiB(10))
    storage = emmc_ue48h6200()
    # 10 MiB / 117 MiB/s ~= 85.5 ms.
    assert image.load_time_ns(storage, MiB(35)) == pytest.approx(msec(85.5), rel=0.01)


def test_stored_bytes_shrink_with_compression():
    image = KernelImage(size_bytes=MiB(10), compressed=True, compression_ratio=2.0)
    assert image.stored_bytes == MiB(5)
    assert KernelImage(size_bytes=MiB(10)).stored_bytes == MiB(10)


def test_compression_does_not_help_on_fast_flash():
    """§2.3's headline: 300 MiB/s UFS vs 35 MiB/s decompression."""
    image = KernelImage(size_bytes=MiB(64), compressed=True)
    assert not image.compression_helps(ufs_galaxy_s6(), decompress_bps=MiB(35))


def test_compression_does_not_help_on_the_tv_emmc():
    image = KernelImage(size_bytes=MiB(10), compressed=True)
    assert not image.compression_helps(emmc_ue48h6200(), decompress_bps=MiB(35))


def test_compression_helps_on_slow_flash():
    """Old NAND below the decompression crossover benefits."""
    slow = StorageDevice("old-nand", seq_read_bps=MiB(12), rand_read_bps=MiB(2))
    image = KernelImage(size_bytes=MiB(10), compressed=True)
    assert image.compression_helps(slow, decompress_bps=MiB(35))


def test_crossover_is_decompression_throughput():
    assert compression_crossover_bps(2.0, MiB(35)) == MiB(35)


def test_compressed_load_is_bounded_by_decompressor():
    # On very fast storage the pipeline is decompressor-bound:
    # 35 MiB at 35 MiB/s = 1 s regardless of read speed.
    image = KernelImage(size_bytes=MiB(35), compressed=True)
    fast = StorageDevice("fast", seq_read_bps=MiB(1000), rand_read_bps=MiB(500))
    assert image.load_time_ns(fast, MiB(35)) == pytest.approx(sec(1), rel=0.01)


def test_invalid_parameters_rejected():
    with pytest.raises(KernelError):
        KernelImage(size_bytes=0)
    with pytest.raises(KernelError):
        KernelImage(size_bytes=MiB(1), compressed=True, compression_ratio=1.0)
    with pytest.raises(KernelError):
        KernelImage(size_bytes=MiB(1), compressed=True).load_time_ns(
            emmc_ue48h6200(), decompress_bps=0)
    with pytest.raises(KernelError):
        compression_crossover_bps(0.5, MiB(35))
    with pytest.raises(KernelError):
        compression_crossover_bps(2.0, 0)
