"""Tests for initcall levels and on-demand deferral."""

import pytest

from repro.errors import KernelError
from repro.kernel.initcalls import Initcall, InitcallLevel, InitcallRegistry
from repro.quantities import msec
from repro.sim import Simulator


def build_registry():
    registry = InitcallRegistry()
    registry.register(Initcall("core_setup", InitcallLevel.CORE, cpu_ns=msec(2)))
    registry.register(Initcall("tuner_drv", InitcallLevel.DEVICE, cpu_ns=msec(3)))
    registry.register(Initcall("usb_drv", InitcallLevel.DEVICE, cpu_ns=msec(4),
                               deferrable=True))
    registry.register(Initcall("wifi_drv", InitcallLevel.LATE, cpu_ns=msec(5),
                               hw_settle_ns=msec(2), deferrable=True))
    return registry


def run_boot(registry, defer):
    sim = Simulator(cores=1, switch_cost_ns=0)

    def boot():
        yield from registry.run_boot(sim, defer=defer)

    sim.spawn(boot(), name="kernel")
    sim.run()
    return sim


def test_boot_sequence_is_level_ordered():
    registry = build_registry()
    names = [c.name for c in registry.boot_sequence(defer=False)]
    assert names == ["core_setup", "tuner_drv", "usb_drv", "wifi_drv"]


def test_defer_excludes_deferrable_calls():
    registry = build_registry()
    names = [c.name for c in registry.boot_sequence(defer=True)]
    assert names == ["core_setup", "tuner_drv"]
    assert registry.deferred == {"usb_drv", "wifi_drv"}


def test_deferring_shortens_boot():
    eager = run_boot(build_registry(), defer=False)
    deferred = run_boot(build_registry(), defer=True)
    assert deferred.now < eager.now
    # Exactly the deferrable work is skipped: 4 + 5 + 2(settle) ms.
    assert eager.now - deferred.now == msec(11)


def test_on_demand_load_runs_once():
    registry = build_registry()
    sim = Simulator(cores=1, switch_cost_ns=0)

    def boot_then_use():
        yield from registry.run_boot(sim, defer=True)
        yield from registry.load_on_demand(sim, "usb_drv")
        before_second = sim.now
        yield from registry.load_on_demand(sim, "usb_drv")  # no-op
        assert sim.now == before_second

    sim.spawn(boot_then_use(), name="k")
    sim.run()
    assert "usb_drv" in registry.completed
    assert "usb_drv" not in registry.deferred
    assert registry.on_demand_loads == 1


def test_on_demand_unknown_initcall_rejected():
    registry = build_registry()
    sim = Simulator()

    def use():
        yield from registry.load_on_demand(sim, "nope")

    sim.spawn(use(), name="u")
    with pytest.raises(KernelError, match="unknown initcall"):
        sim.run()


def test_duplicate_registration_rejected():
    registry = build_registry()
    with pytest.raises(KernelError, match="duplicate"):
        registry.register(Initcall("tuner_drv", InitcallLevel.DEVICE, cpu_ns=1))


def test_negative_cost_rejected():
    with pytest.raises(KernelError):
        Initcall("bad", InitcallLevel.CORE, cpu_ns=-1)
