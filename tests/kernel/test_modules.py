"""Tests for external kernel module loading."""

import pytest

from repro.errors import KernelError
from repro.hw.presets import emmc_ue48h6200
from repro.kernel.modules import SYSCALLS_PER_LOAD, KernelModule, ModuleLoader
from repro.quantities import KiB, msec
from repro.sim import Simulator


def test_load_accounts_syscalls_and_bytes():
    sim = Simulator()
    storage = emmc_ue48h6200().attach(sim)
    loader = ModuleLoader(storage)
    module = KernelModule("tuner_drv", size_bytes=KiB(64))

    def work():
        yield from loader.load(sim, module)

    sim.spawn(work(), name="kmod")
    sim.run()
    assert loader.loaded == {"tuner_drv"}
    assert loader.syscalls_issued == SYSCALLS_PER_LOAD
    assert loader.bytes_loaded == KiB(64)


def test_load_is_idempotent():
    sim = Simulator()
    storage = emmc_ue48h6200().attach(sim)
    loader = ModuleLoader(storage)
    module = KernelModule("m", size_bytes=KiB(64))

    def work():
        yield from loader.load(sim, module)
        t_after_first = sim.now
        yield from loader.load(sim, module)
        assert sim.now == t_after_first

    sim.spawn(work(), name="kmod")
    sim.run()
    assert loader.syscalls_issued == SYSCALLS_PER_LOAD


def test_load_all_is_sequential():
    sim = Simulator()
    storage = emmc_ue48h6200().attach(sim)
    loader = ModuleLoader(storage)
    modules = [KernelModule(f"m{n}", size_bytes=KiB(128)) for n in range(10)]

    def work():
        yield from loader.load_all(sim, modules)

    sim.spawn(work(), name="kmod")
    sim.run()
    assert len(loader.loaded) == 10
    # 10 x 128 KiB random reads at 37 MiB/s ~= 33 ms of I/O alone.
    assert sim.now > msec(30)


def test_hw_settle_adds_wall_time_not_cpu():
    sim = Simulator()
    storage = emmc_ue48h6200().attach(sim)
    loader = ModuleLoader(storage)
    module = KernelModule("slow_hw", size_bytes=KiB(16), hw_settle_ns=msec(50))

    def work():
        yield from loader.load(sim, module)

    process = sim.spawn(work(), name="kmod")
    sim.run()
    assert sim.now > msec(50)
    assert process.cpu_time_ns < msec(5)


def test_invalid_module_rejected():
    with pytest.raises(KernelError):
        KernelModule("bad", size_bytes=0)
    with pytest.raises(KernelError):
        KernelModule("bad", link_cpu_ns=-1)
