"""Tests for the RCU subsystem — the Algorithm 1 vs Algorithm 2 behaviour."""

import pytest

from repro.errors import KernelError
from repro.kernel.rcu import RCUMode, RCUSubsystem
from repro.quantities import msec
from repro.sim import Compute, Simulator


def run_boot_like_workload(mode, cores=4, syncers=6, innocents=4):
    """N processes each doing RCU syncs, plus innocent compute-bound tasks
    that model the rest of the boot work competing for cores."""
    sim = Simulator(cores=cores, switch_cost_ns=0)
    rcu = RCUSubsystem(sim)
    rcu.set_mode(mode)

    def syncer():
        for _ in range(3):
            yield Compute(msec(1))
            yield from rcu.synchronize_rcu()

    def innocent():
        yield Compute(msec(30))

    finish = {}

    def tracked_innocent(n):
        yield from innocent()
        finish[n] = sim.now

    for n in range(syncers):
        sim.spawn(syncer(), name=f"sync{n}")
    for n in range(innocents):
        sim.spawn(tracked_innocent(n), name=f"innocent{n}")
    sim.run()
    return sim, rcu, max(finish.values(), default=0)


def test_sysfs_interface_round_trips():
    sim = Simulator()
    rcu = RCUSubsystem(sim)
    assert rcu.read_sysfs() == "0"
    rcu.write_sysfs("1")
    assert rcu.mode is RCUMode.BOOSTED
    assert rcu.read_sysfs() == "1"
    rcu.write_sysfs("0")
    assert rcu.mode is RCUMode.CONVENTIONAL


def test_sysfs_rejects_garbage():
    sim = Simulator()
    rcu = RCUSubsystem(sim)
    with pytest.raises(KernelError, match="invalid write"):
        rcu.write_sysfs("maybe")


def test_mode_switch_counting():
    sim = Simulator()
    rcu = RCUSubsystem(sim)
    rcu.set_mode(RCUMode.BOOSTED)
    rcu.set_mode(RCUMode.BOOSTED)  # no-op
    rcu.set_mode(RCUMode.CONVENTIONAL)
    assert rcu.mode_switches == 2


def test_single_sync_durations():
    """Uncontended: conventional is a normal grace period, boosted an
    expedited one."""

    def single(mode):
        sim = Simulator(cores=1, switch_cost_ns=0)
        rcu = RCUSubsystem(sim)
        rcu.set_mode(mode)

        def caller():
            yield from rcu.synchronize_rcu()

        sim.spawn(caller(), name="c")
        sim.run()
        return sim.now

    conventional = single(RCUMode.CONVENTIONAL)
    boosted = single(RCUMode.BOOSTED)
    assert conventional >= msec(12)
    assert boosted < conventional


def test_conventional_spins_burn_cpu_boosted_do_not():
    _, rcu_conv, _ = run_boot_like_workload(RCUMode.CONVENTIONAL)
    assert rcu_conv.spin_time_ns > 0
    _, rcu_boost, _ = run_boot_like_workload(RCUMode.BOOSTED)
    assert rcu_boost.spin_time_ns == 0


def test_boosted_mode_lets_other_boot_work_finish_earlier():
    """The Fig. 5(a) effect: with RCU Booster, non-RCU boot tasks get cores
    earlier and finish sooner."""
    _, _, conv_finish = run_boot_like_workload(RCUMode.CONVENTIONAL)
    _, _, boost_finish = run_boot_like_workload(RCUMode.BOOSTED)
    assert boost_finish < conv_finish


def test_boosted_costs_more_cpu_per_uncontended_op():
    """§4.3 trade-off: without contention the boosted path consumes more
    CPU per call (barriers, forced quiescent states, wake costs)."""

    def cpu_for_one(mode):
        sim = Simulator(cores=1, switch_cost_ns=0)
        rcu = RCUSubsystem(sim)
        rcu.set_mode(mode)

        def caller():
            yield from rcu.synchronize_rcu()

        process = sim.spawn(caller(), name="c")
        sim.run()
        return process.cpu_time_ns

    assert cpu_for_one(RCUMode.BOOSTED) > cpu_for_one(RCUMode.CONVENTIONAL)


def test_sync_statistics_accumulate():
    sim, rcu, _ = run_boot_like_workload(RCUMode.CONVENTIONAL, syncers=2, innocents=0)
    assert rcu.sync_count == 6
    assert rcu.total_sync_wall_ns >= 6 * msec(12)


def test_mode_sampled_at_call_entry():
    """A mode switch mid-boot affects only later synchronize_rcu calls."""
    sim = Simulator(cores=2, switch_cost_ns=0)
    rcu = RCUSubsystem(sim)
    rcu.set_mode(RCUMode.BOOSTED)
    durations = []

    def caller():
        start = sim.now
        yield from rcu.synchronize_rcu()
        durations.append(sim.now - start)
        rcu.write_sysfs("0")  # boot complete: disable boosting
        start = sim.now
        yield from rcu.synchronize_rcu()
        durations.append(sim.now - start)

    sim.spawn(caller(), name="c")
    sim.run()
    assert durations[0] < durations[1]


def test_invalid_grace_periods_rejected():
    sim = Simulator()
    with pytest.raises(KernelError):
        RCUSubsystem(sim, grace_period_ns=0)
    with pytest.raises(KernelError):
        RCUSubsystem(sim, grace_period_ns=msec(1), expedited_grace_period_ns=msec(2))
