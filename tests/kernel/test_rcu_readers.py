"""Tests for the reader-tracking RCU mode (two-phase grace periods)."""

import pytest

from repro.errors import KernelError
from repro.kernel.rcu import RCUMode, RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator, Timeout


def make(engine=None, **kwargs):
    sim = engine or Simulator(cores=4, switch_cost_ns=0)
    kwargs.setdefault("reader_tracking", True)
    kwargs.setdefault("grace_period_ns", msec(2))
    kwargs.setdefault("expedited_grace_period_ns", msec(1))
    return sim, RCUSubsystem(sim, **kwargs)


def test_grace_period_waits_for_preexisting_reader():
    sim, rcu = make()
    done_at = {}

    def reader():
        token = rcu.read_lock()
        yield Timeout(msec(50))
        rcu.read_unlock(token)

    def writer():
        yield Timeout(msec(1))  # the reader is inside its section
        yield from rcu.synchronize_rcu()
        done_at["writer"] = sim.now

    sim.spawn(reader(), name="reader")
    sim.spawn(writer(), name="writer")
    sim.run()
    # GP cannot end before the reader exits at 50 ms.
    assert done_at["writer"] >= msec(50)


def test_grace_period_ignores_later_readers():
    """A reader that starts after the grace period began never extends it
    (the two-phase property that prevents writer starvation)."""
    sim, rcu = make()
    done_at = {}

    def early_reader():
        token = rcu.read_lock()
        yield Timeout(msec(10))
        rcu.read_unlock(token)

    def late_reader():
        yield Timeout(msec(5))  # arrives while the GP is in progress
        token = rcu.read_lock()
        yield Timeout(msec(200))
        rcu.read_unlock(token)

    def writer():
        yield Timeout(msec(1))
        yield from rcu.synchronize_rcu()
        done_at["writer"] = sim.now

    sim.spawn(early_reader(), name="early")
    sim.spawn(late_reader(), name="late", daemon=True)
    sim.spawn(writer(), name="writer")
    sim.run()
    # Bounded by the early reader (10 ms) + floor, NOT the late one (205 ms).
    assert msec(10) <= done_at["writer"] <= msec(20)


def test_no_readers_means_floor_only():
    sim, rcu = make()
    done_at = {}

    def writer():
        yield from rcu.synchronize_rcu()
        done_at["writer"] = sim.now

    sim.spawn(writer(), name="writer")
    sim.run()
    # Conventional floor (2 ms) + op cost; well under 5 ms.
    assert done_at["writer"] <= msec(5)


def test_boosted_mode_has_shorter_floor():
    def run(mode):
        sim, rcu = make()
        rcu.set_mode(mode)
        end = {}

        def writer():
            yield from rcu.synchronize_rcu()
            end["t"] = sim.now

        sim.spawn(writer(), name="w")
        sim.run()
        return end["t"]

    assert run(RCUMode.BOOSTED) < run(RCUMode.CONVENTIONAL)


def test_unbalanced_unlock_rejected():
    sim, rcu = make()
    with pytest.raises(KernelError, match="without a matching lock"):
        rcu.read_unlock(0)


def test_nested_and_concurrent_readers_counted():
    sim, rcu = make()
    t1 = rcu.read_lock()
    t2 = rcu.read_lock()
    assert rcu.active_readers == 2
    assert rcu.reader_sections == 2
    rcu.read_unlock(t1)
    rcu.read_unlock(t2)
    assert rcu.active_readers == 0


def test_fixed_model_unaffected_by_readers():
    """The calibrated default ignores read-side sections entirely."""
    sim, rcu = make(reader_tracking=False)
    done_at = {}
    token = rcu.read_lock()  # a reader that never exits

    def writer():
        yield from rcu.synchronize_rcu()
        done_at["writer"] = sim.now

    sim.spawn(writer(), name="writer")
    sim.run()
    assert done_at["writer"] <= msec(5)


def test_consecutive_grace_periods_alternate_phases():
    sim, rcu = make()
    done = []

    def reader(delay_ms, hold_ms):
        yield Timeout(msec(delay_ms))
        token = rcu.read_lock()
        yield Timeout(msec(hold_ms))
        rcu.read_unlock(token)

    def writer():
        yield Timeout(msec(1))
        yield from rcu.synchronize_rcu()
        done.append(sim.now)
        yield from rcu.synchronize_rcu()
        done.append(sim.now)

    sim.spawn(reader(0, 8), name="r1")
    sim.spawn(reader(2, 30), name="r2")
    sim.spawn(writer(), name="writer")
    sim.run()
    # r1 (phase 0) gates the first GP: ends just after 8 ms.  r2 entered
    # at 2 ms, after the flip, so it holds phase 1 and gates the SECOND
    # grace period until it exits at 32 ms.
    assert msec(8) <= done[0] <= msec(15)
    assert done[1] >= msec(32)
