"""Tests for the orchestrated kernel boot sequence — the Fig. 6(a) numbers."""

import pytest

from repro.hw.presets import ue48h6200
from repro.kernel.sequence import KernelBootSequence
from repro.quantities import msec
from repro.sim import Simulator


def boot(deferred=False):
    sim = Simulator(cores=4)
    platform = ue48h6200().attach(sim)
    sequence = KernelBootSequence(platform,
                                  deferred_meminit=deferred,
                                  deferred_journal=deferred,
                                  defer_initcalls=deferred)

    def run():
        yield from sequence.run(sim)

    sim.spawn(run(), name="kernel")
    sim.run()
    return sim, sequence


def test_conventional_kernel_boot_near_698ms():
    """§2.4 / Fig. 6(a): the optimized no-BB kernel boots in ~698 ms."""
    sim, sequence = boot(deferred=False)
    assert sequence.timings.total_ns == pytest.approx(msec(698), rel=0.02)


def test_bb_kernel_boot_near_403ms():
    """Fig. 6(a): with deferred meminit and journal, ~403 ms."""
    sim, sequence = boot(deferred=True)
    assert sequence.timings.total_ns == pytest.approx(msec(403), rel=0.02)


def test_meminit_stage_matches_figure():
    _, conventional = boot(deferred=False)
    _, bb = boot(deferred=True)
    assert conventional.timings.meminit_ns == pytest.approx(msec(370), rel=0.02)
    assert bb.timings.meminit_ns == pytest.approx(msec(110), rel=0.02)


def test_rootfs_stage_matches_figure():
    _, conventional = boot(deferred=False)
    _, bb = boot(deferred=True)
    assert conventional.timings.rootfs_ns == pytest.approx(msec(110), rel=0.05)
    assert bb.timings.rootfs_ns == pytest.approx(msec(75), rel=0.05)


def test_stage_timings_sum_to_total():
    _, sequence = boot()
    t = sequence.timings
    assert t.total_ns == (t.bootloader_ns + t.meminit_ns + t.core_ns
                          + t.initcalls_ns + t.rootfs_ns)


def test_deferred_tasks_complete_the_remaining_work():
    sim, sequence = boot(deferred=True)
    assert not sequence.meminit.remainder_done
    assert not sequence.rootfs.journal_enabled
    spawned = sequence.spawn_deferred_tasks(sim)
    assert len(spawned) == 2
    sim.run()
    assert sequence.meminit.remainder_done
    assert sequence.rootfs.journal_enabled


def test_no_deferred_tasks_when_nothing_deferred():
    sim, sequence = boot(deferred=False)
    assert sequence.spawn_deferred_tasks(sim) == []


def test_rcu_subsystem_created_by_run():
    _, sequence = boot()
    assert sequence.rcu is not None


def test_boot_is_deterministic():
    _, a = boot()
    _, b = boot()
    assert a.timings == b.timings
