"""Tests for the §2.1 suspend/hibernation background models."""

import pytest

from repro.errors import KernelError
from repro.hw.presets import galaxy_s6_like, ue48h6200
from repro.kernel.snapshot import (EU_STANDBY_LIMIT_W, HibernationModel,
                                   SuspendToRamModel)
from repro.quantities import sec


def test_galaxy_s6_snapshot_restore_is_about_ten_seconds():
    """§2.1: 3 GiB at ~300 MiB/s means ~10 s just to read the image."""
    phone = galaxy_s6_like()
    model = HibernationModel()
    restore = model.restore_time_ns(phone)
    assert sec(10) <= restore <= sec(11)


def test_snapshot_creation_blocks_shutdown_even_longer():
    phone = galaxy_s6_like()
    model = HibernationModel()
    assert model.create_time_ns(phone) > model.restore_time_ns(phone) - sec(1)


def test_partial_image_restores_faster():
    phone = galaxy_s6_like()
    full = HibernationModel(image_fraction=1.0)
    half = HibernationModel(image_fraction=0.5)
    assert half.restore_time_ns(phone) < full.restore_time_ns(phone)


def test_factory_snapshot_unusable_with_third_party_apps():
    assert HibernationModel(third_party_apps=False).usable_with_factory_image()
    assert not HibernationModel(third_party_apps=True).usable_with_factory_image()


def test_tv_snapshot_restore_is_slow_on_emmc():
    """1 GiB at 117 MiB/s is ~8.75 s — worse than BB's 3.5 s cold boot."""
    tv = ue48h6200()
    restore = HibernationModel().restore_time_ns(tv)
    assert restore > sec(8)


def test_suspend_to_ram_is_fast_but_lost_on_unplug():
    model = SuspendToRamModel()
    assert model.resume_time_ns < sec(2)
    assert not model.available_after_unplug()


def test_eu_regulation_gate():
    assert SuspendToRamModel(standby_power_w=0.5).meets_eu_standby_regulation()
    # The rejected silent-boot design keeps the AP active at > 1 W.
    assert not SuspendToRamModel(standby_power_w=3.0).meets_eu_standby_regulation()
    assert EU_STANDBY_LIMIT_W == 1.0


def test_invalid_parameters_rejected():
    with pytest.raises(KernelError):
        HibernationModel(image_fraction=0.0)
    with pytest.raises(KernelError):
        HibernationModel(image_fraction=1.5)
    with pytest.raises(KernelError):
        SuspendToRamModel(resume_time_ns=-1)
    with pytest.raises(KernelError):
        SuspendToRamModel(standby_power_w=-0.1)
