"""Property-based tests of whole-boot invariants on generated workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BBConfig, BootSimulation
from repro.initsys.transaction import JobState
from repro.workloads import GeneratorParams, generate_workload

# Profile comes from tests/conftest.py; each example here is 1-2 whole
# boots, so cap the count below the profile default.
fewer_examples = settings(max_examples=12)

params_strategy = st.builds(
    GeneratorParams,
    seed=st.integers(0, 10_000),
    services=st.integers(5, 40),
    chain_length=st.integers(2, 6),
    want_density=st.floats(0.0, 0.8),
    order_density=st.floats(0.0, 0.5),
    mean_cpu_ms=st.floats(5.0, 80.0),
    rcu_sync_mean=st.floats(0.0, 2.0),
)


@fewer_examples
@given(params_strategy)
def test_generated_workloads_always_complete_boot(params):
    report = BootSimulation(generate_workload(params), BBConfig.none()).run()
    assert report.boot_complete_ns > 0
    assert report.all_done_ns >= report.boot_complete_ns


@fewer_examples
@given(params_strategy)
def test_bb_never_slower_than_conventional(params):
    """The headline invariant: full BB never loses to the conventional
    boot on any workload shape (small scheduling-noise slack allowed)."""
    workload = generate_workload(params)
    conventional = BootSimulation(workload, BBConfig.none()).run()
    boosted = BootSimulation(generate_workload(params), BBConfig.full()).run()
    slack = 20_000_000  # 20 ms of scheduling noise
    assert boosted.boot_complete_ns <= conventional.boot_complete_ns + slack


@fewer_examples
@given(params_strategy)
def test_every_unit_starts_before_it_is_ready(params):
    simulation = BootSimulation(generate_workload(params), BBConfig.full())
    report = simulation.run()
    for name, ready in report.unit_ready_ns.items():
        assert report.unit_started_ns[name] <= ready


@fewer_examples
@given(params_strategy)
def test_all_jobs_reach_a_terminal_state(params):
    simulation = BootSimulation(generate_workload(params), BBConfig.none())
    simulation.run()
    assert simulation.manager is not None
    for job in simulation.manager.transaction.jobs.values():
        assert job.state in (JobState.DONE, JobState.SKIPPED), job.name


@fewer_examples
@given(params_strategy)
def test_strong_dependencies_respected_in_every_run(params):
    """In-order semantics: a unit never starts before everything it
    Requires is ready (the correctness systemd guarantees and
    out-of-order schemes violate)."""
    simulation = BootSimulation(generate_workload(params), BBConfig.none())
    report = simulation.run()
    registry = simulation.manager.registry
    transaction = simulation.manager.transaction
    for job in transaction.jobs.values():
        for dep in job.unit.requires:
            if dep not in transaction.jobs:
                continue
            dep_job = transaction.job(dep)
            if job.started_at_ns is None or dep_job.ready_at_ns is None:
                continue
            assert dep_job.ready_at_ns <= job.started_at_ns, \
                f"{job.name} started before required {dep} was ready"
