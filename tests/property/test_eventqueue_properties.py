"""Property-based differential test of :class:`EventQueue` invariants.

Drives random interleavings of push / pop / cancel / peek_time against a
brutally simple reference model (a sorted list with eager deletion) and
asserts the two never disagree.  The invariants pinned here are exactly
the ones the checkpoint/fork engine leans on: ``len()`` counts live
events only, pops come out in ``(time, seq)`` order (FIFO tie-break),
and ``peek_time``'s lazy cleanup of cancelled heads never discards a
live event.
"""

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue

# An operation is ("push", time_ns) | ("pop",) | ("cancel", key) |
# ("peek",).  Cancel keys are reduced modulo the number of pushes so far,
# so cancels target arbitrary live/executed/already-cancelled events.
_OPS = st.one_of(
    st.tuples(st.just("push"), st.integers(min_value=0, max_value=1_000)),
    st.tuples(st.just("pop")),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
    st.tuples(st.just("peek")),
)


class _Model:
    """Eager-deletion reference: a plain sorted list of (time, seq)."""

    def __init__(self):
        self.live = []
        self.seq = 0

    def push(self, time_ns):
        self.live.append((time_ns, self.seq))
        self.seq += 1
        self.live.sort()

    def pop(self):
        return self.live.pop(0)

    def cancel(self, key):
        self.live = [entry for entry in self.live if entry[1] != key]

    def peek_time(self):
        return self.live[0][0] if self.live else None


@given(st.lists(_OPS, max_size=200))
def test_queue_agrees_with_eager_reference(ops):
    queue = EventQueue()
    model = _Model()
    events = []  # every ScheduledEvent ever pushed, by seq

    for op in ops:
        if op[0] == "push":
            event = queue.push(op[1], lambda: None)
            assert event.seq == len(events)  # seq numbers are dense
            events.append(event)
            model.push(op[1])
        elif op[0] == "pop":
            if model.live:
                popped = queue.pop()
                assert (popped.time_ns, popped.seq) == model.pop()
                assert popped.executed and not popped.cancelled
            else:
                with pytest.raises(SimulationError):
                    queue.pop()
        elif op[0] == "cancel":
            if events:
                target = events[op[1] % len(events)]
                queue.cancel(target)  # idempotent, no-op on executed
                if not target.executed:
                    model.cancel(target.seq)
        else:  # peek
            assert queue.peek_time() == model.peek_time()
        # Standing invariants after every single operation:
        assert len(queue) == len(model.live)
        assert queue.peek_time() == model.peek_time()

    # Drain: everything still live pops out in exact (time, seq) order,
    # proving peek_time's lazy head-cleanup dropped only cancelled events.
    drained = []
    while len(queue):
        event = queue.pop()
        drained.append((event.time_ns, event.seq))
    assert drained == model.live
    assert queue.peek_time() is None
    with pytest.raises(SimulationError):
        queue.pop()


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=2,
                max_size=60))
def test_equal_times_pop_in_push_order(times):
    """FIFO tie-break: among equal timestamps, push order is pop order."""
    queue = EventQueue()
    for time_ns in times:
        queue.push(time_ns, lambda: None)
    last_seq_at_time = {}
    while len(queue):
        event = queue.pop()
        previous = last_seq_at_time.get(event.time_ns)
        assert previous is None or event.seq > previous
        last_seq_at_time[event.time_ns] = event.seq


@given(st.integers(min_value=-10**9, max_value=-1))
def test_negative_times_rejected(time_ns):
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(time_ns, lambda: None)
    assert len(queue) == 0 and queue.peek_time() is None
