"""Journal + backoff laws under arbitrary inputs (hypothesis).

Three contracts the crash-recovery story leans on:

* **Replay idempotency** — folding any record sequence over the empty
  state once or many times (or folding any duplication of it) yields
  the same open-submission set, which is what makes the journal's
  checkpoint-then-truncate pair safe without a transaction.
* **Tail-damage tolerance** — truncating a valid journal at *any* byte
  boundary, or appending arbitrary garbage to it, never raises and
  never loses a record that was durable before the damage point.
* **Backoff determinism** — a retry schedule is a pure function of its
  ``(retries, base, cap, seed)`` inputs and always respects the jittered
  exponential envelope.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.client import backoff_schedule
from repro.fleet.journal import (encode_record, parse_journal_bytes,
                                 replay_records)

_KEYS = st.text(alphabet="abcdef0123456789", min_size=1, max_size=8)

_RECORDS = st.lists(
    st.one_of(
        st.builds(lambda key, sid, priority: {
            "type": "submit", "key": key, "sid": sid,
            "specs": [{"workload": "tv"}], "priority": priority,
        }, _KEYS, st.text(max_size=8), st.integers(-3, 3)),
        st.builds(lambda key: {"type": "done", "key": key}, _KEYS),
    ),
    max_size=20)


@given(records=_RECORDS)
@settings(max_examples=150, deadline=None)
def test_replay_is_idempotent(records):
    once = replay_records(records)
    assert replay_records(records, once) == once
    assert replay_records([], once) == once


@given(records=_RECORDS, data=st.data())
@settings(max_examples=150, deadline=None)
def test_replay_is_duplication_invariant(records, data):
    # Duplicating any individual record in place cannot change the
    # outcome: submits are first-wins, dones are already-closed no-ops.
    if records:
        index = data.draw(st.integers(0, len(records) - 1))
        duplicated = records[: index + 1] + records[index:]
    else:
        duplicated = records
    assert replay_records(duplicated) == replay_records(records)


@given(records=_RECORDS, cut=st.integers(min_value=0, max_value=4096))
@settings(max_examples=150, deadline=None)
def test_any_tail_truncation_is_tolerated(records, cut):
    raw = b"".join(encode_record(record) for record in records)
    torn = raw[: max(0, len(raw) - cut)]
    parsed, skipped, valid = parse_journal_bytes(torn)
    # Every whole line before the cut survives (and a cut that only ate
    # the final newline still leaves that record decodable); at most the
    # one record the cut landed inside is skipped.
    whole = torn.count(b"\n")
    assert whole <= len(parsed) <= whole + 1
    assert skipped <= 1
    assert parsed == records[: len(parsed)]
    # The valid prefix is exactly the parsed records: reparsing it
    # skips nothing and yields the same result.
    reparsed, reskipped, revalid = parse_journal_bytes(torn[:valid])
    assert reparsed == parsed
    assert reskipped == 0
    assert revalid == valid


@given(records=_RECORDS, cut=st.integers(min_value=0, max_value=4096))
@settings(max_examples=150, deadline=None)
def test_append_after_tail_repair_never_glues(records, cut):
    # What JobJournal does on recovery: truncate to the valid prefix,
    # restore a missing final newline, then append.  Whatever the cut,
    # the appended record must parse as one more valid record — never
    # merge with the tail into mid-journal damage.
    raw = b"".join(encode_record(record) for record in records)
    torn = raw[: max(0, len(raw) - cut)]
    parsed, _skipped, valid = parse_journal_bytes(torn)
    clean = torn[:valid]
    if clean and not clean.endswith(b"\n"):
        clean += b"\n"
    tail = {"type": "done", "key": "zz"}
    reparsed, reskipped, _revalid = parse_journal_bytes(
        clean + encode_record(tail))
    assert reparsed == parsed + [tail]
    assert reskipped == 0


@given(records=_RECORDS, garbage=st.binary(max_size=64))
@settings(max_examples=150, deadline=None)
def test_garbage_tails_are_skipped_not_fatal(records, garbage):
    # A power cut mid-append leaves arbitrary bytes after the last
    # durable newline.  However they decode, replay of the parsed
    # prefix must equal replay of the clean journal.
    raw = b"".join(encode_record(record) for record in records)
    parsed, _skipped, valid = parse_journal_bytes(
        raw + garbage.replace(b"\n", b""))
    assert parsed == records
    assert valid == len(raw)
    assert replay_records(parsed) == replay_records(records)


@given(retries=st.integers(0, 12), seed=st.integers(0, 2**32 - 1),
       base=st.floats(0.001, 1.0), cap=st.floats(1.0, 10.0))
@settings(max_examples=150, deadline=None)
def test_backoff_schedule_is_deterministic_and_bounded(retries, seed,
                                                       base, cap):
    first = backoff_schedule(retries, base, cap, seed)
    assert first == backoff_schedule(retries, base, cap, seed)
    assert len(first) == retries
    for attempt, delay in enumerate(first):
        ceiling = min(cap, base * 2 ** attempt)
        assert ceiling * 0.5 <= delay < ceiling
