"""Property-based tests of the closed-form boot predictor.

The predictor (:mod:`repro.analysis.predict`) claims to replicate the
DES — not approximate it — on unperturbed boots.  These tests press the
claim on randomly generated acyclic service graphs rather than the
hand-built presets: exactness against a live simulation at several core
counts, core monotonicity of the analytic solution, and the classic
critical-path lower bound that no schedule can beat.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.predict import predict
from repro.core import BBConfig, BootSimulation
from repro.graph.critical_path import critical_path
from repro.verify.oracles import (CORE_ANOMALY_TOLERANCE,
                                  check_prediction_matches_des)
from repro.workloads import GeneratorParams, generate_workload

# Profile comes from tests/conftest.py; every example below solves (and
# for the differential test, also simulates) whole boots, so cap the
# example count well under the profile default.
fewer_examples = settings(max_examples=10)

params_strategy = st.builds(
    GeneratorParams,
    seed=st.integers(0, 10_000),
    services=st.integers(5, 30),
    chain_length=st.integers(2, 6),
    want_density=st.floats(0.0, 0.8),
    order_density=st.floats(0.0, 0.5),
    mean_cpu_ms=st.floats(5.0, 80.0),
    rcu_sync_mean=st.floats(0.0, 2.0),
)

# Neither BBConfig.none() nor BBConfig.full() can hit the single-core
# priority-inversion livelock (it needs group_priority_boost *without*
# rcu_booster), so both are safe across every core count drawn here.
bb_strategy = st.sampled_from([None, BBConfig.none(), BBConfig.full()])


@fewer_examples
@given(params_strategy, bb_strategy, st.sampled_from([1, 2, 4]))
def test_prediction_matches_des_on_random_graphs(params, bb, cores):
    """Differential exactness: the shared verify oracle must hold on any
    generated graph, any built-in config corner, any core count."""
    violations = check_prediction_matches_des(
        lambda: generate_workload(params), bb=bb, cores=cores)
    assert not violations, violations


@fewer_examples
@given(params_strategy, bb_strategy)
def test_prediction_is_core_monotone(params, bb):
    """More cores never predict a slower boot (beyond the same Graham
    scheduling-anomaly tolerance the DES-level law carries — the
    predictor replicates the DES, anomalies included)."""
    times = [predict(generate_workload(params), bb,
                     cores=cores).boot_complete_ns
             for cores in (1, 2, 4)]
    for fewer, more in zip(times, times[1:]):
        assert more <= fewer * (1.0 + CORE_ANOMALY_TOLERANCE), times


@fewer_examples
@given(params_strategy)
def test_critical_path_lower_bounds_unlimited_cores(params):
    """No schedule beats the costliest strong chain: the conventional
    boot predicted on an effectively unlimited core count still takes at
    least ``critical_path.length_ns`` of user-space time."""
    workload = generate_workload(params)
    path = critical_path(workload.fresh_registry(),
                         workload.completion_units,
                         storage=workload.platform_factory().storage)
    prediction = predict(generate_workload(params), BBConfig.none(),
                         cores=64)
    assert prediction.boot_complete_ns >= path.length_ns


def test_prediction_matches_des_on_stock_tv_boot():
    """Non-hypothesis anchor: the headline preset stays exact."""
    from repro.workloads import opensource_tv_workload

    violations = check_prediction_matches_des(opensource_tv_workload,
                                              bb=BBConfig.full(), cores=4)
    assert not violations, violations
