"""Scheduler contract under arbitrary interleavings (hypothesis).

Two laws from :class:`repro.runner.schedule.JobScheduler`'s docstring:

* **single-flight** — across any interleaving of submits, dispatches and
  completions, a fingerprint is dispatched at most once, and never while
  a prior dispatch of it is still in flight;
* **ordered delivery** — every client drains its results in exactly its
  submission order, regardless of priorities, completion order, or how
  other clients' work interleaves.

Jobs here are lightweight stand-ins with controllable fingerprints (the
scheduler only ever calls ``job.fingerprint()``), so hypothesis can run
hundreds of interleavings without booting anything.
"""

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.schedule import JobScheduler


@dataclass(frozen=True)
class FakeJob:
    """The minimal job surface the scheduler touches."""

    key: str

    def fingerprint(self) -> str:
        return self.key


# One scripted interleaving: a list of ops applied in order.
#   ("submit", client 0-2, fingerprint 0-5, priority 0-2)
#   ("dispatch", batch limit 1-3)   -> marks fingerprints in-flight
#   ("complete", slot 0-7)          -> finishes the n-th oldest in-flight
#   ("drain", client 0-2)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(0, 2), st.integers(0, 5),
                  st.integers(0, 2)),
        st.tuples(st.just("dispatch"), st.integers(1, 3)),
        st.tuples(st.just("complete"), st.integers(0, 7)),
        st.tuples(st.just("drain"), st.integers(0, 2)),
    ),
    min_size=1, max_size=60)


def _run_script(ops):
    """Apply one interleaving; returns the trace the laws are checked on."""
    scheduler = JobScheduler()
    inflight: list[str] = []           # dispatch order, oldest first
    dispatched: list[str] = []         # every fingerprint ever dispatched
    submitted: dict[str, list[str]] = {}   # client -> fingerprints, in order
    delivered: dict[str, list] = {}        # client -> drained tickets
    for op in ops:
        if op[0] == "submit":
            client, fp, priority = f"c{op[1]}", f"fp{op[2]}", op[3]
            scheduler.submit(client, FakeJob(fp), priority=priority)
            submitted.setdefault(client, []).append(fp)
        elif op[0] == "dispatch":
            for fingerprint, _ in scheduler.next_batch(op[1]):
                assert fingerprint not in inflight, (
                    "single-flight violated: dispatched while in flight")
                dispatched.append(fingerprint)
                inflight.append(fingerprint)
        elif op[0] == "complete":
            if inflight:
                fingerprint = inflight.pop(op[1] % len(inflight))
                for client in scheduler.complete(fingerprint,
                                                 f"r:{fingerprint}"):
                    delivered.setdefault(client, []).extend(
                        scheduler.drain(client))
        elif op[0] == "drain":
            client = f"c{op[1]}"
            delivered.setdefault(client, []).extend(scheduler.drain(client))
    # Settle everything still in flight, then drain every client.
    while inflight:
        fingerprint = inflight.pop(0)
        for client in scheduler.complete(fingerprint, f"r:{fingerprint}"):
            delivered.setdefault(client, []).extend(scheduler.drain(client))
    while True:
        batch = scheduler.next_batch(8)
        if not batch:
            break
        for fingerprint, _ in batch:
            dispatched.append(fingerprint)
            for client in scheduler.complete(fingerprint, f"r:{fingerprint}"):
                delivered.setdefault(client, []).extend(
                    scheduler.drain(client))
    for client in submitted:
        delivered.setdefault(client, []).extend(scheduler.drain(client))
    return scheduler, dispatched, submitted, delivered


@given(_OPS)
@settings(max_examples=120)
def test_single_flight_never_dispatches_a_fingerprint_twice(ops):
    _, dispatched, _, _ = _run_script(ops)
    assert len(dispatched) == len(set(dispatched)), (
        "a fingerprint was dispatched more than once")


@given(_OPS)
@settings(max_examples=120)
def test_every_client_drains_in_submission_order(ops):
    scheduler, _, submitted, delivered = _run_script(ops)
    for client, fingerprints in submitted.items():
        tickets = delivered.get(client, [])
        assert [t.fingerprint for t in tickets] == fingerprints, (
            f"{client} drained out of submission order")
        assert [t.seq for t in tickets] == list(range(len(fingerprints)))
        assert all(t.result == f"r:{t.fingerprint}" for t in tickets)
    assert scheduler.idle


@given(_OPS)
@settings(max_examples=60)
def test_accounting_balances(ops):
    scheduler, dispatched, submitted, _ = _run_script(ops)
    stats = scheduler.stats
    total = sum(len(v) for v in submitted.values())
    assert stats.submitted == total
    assert stats.delivered == total
    assert stats.dispatched == len(dispatched)
    assert stats.cache_hits + stats.coalesced + stats.dispatched == total
