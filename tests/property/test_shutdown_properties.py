"""Property-based tests for shutdown sequencing on random DAGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.presets import ue48h6200
from repro.initsys.registry import UnitRegistry
from repro.initsys.shutdown import ShutdownSequencer
from repro.initsys.units import SimCost, Unit
from repro.quantities import msec
from repro.sim import Simulator

# Profile comes from tests/conftest.py; each example runs a full
# shutdown sequence, so cap the count below the profile default.
fewer_examples = settings(max_examples=30)


@st.composite
def dag_registries(draw):
    count = draw(st.integers(min_value=2, max_value=14))
    names = [f"s{i:02d}.service" for i in range(count)]
    units = []
    for index, name in enumerate(names):
        earlier = names[:index]
        requires = draw(st.lists(st.sampled_from(earlier), max_size=2,
                                 unique=True)) if earlier else []
        after = draw(st.lists(st.sampled_from(earlier), max_size=1,
                              unique=True)) if earlier else []
        units.append(Unit(name=name, requires=requires, after=after,
                          cost=SimCost(stop_ns=msec(1), exec_bytes=0)))
    units.append(Unit(name="goal.target", requires=list(names)))
    return UnitRegistry(units)


def run_shutdown(registry):
    sim = Simulator(cores=4)
    sequencer = ShutdownSequencer(sim, registry, goal="goal.target")
    sequencer.spawn()
    sim.run()
    return sequencer


@fewer_examples
@given(dag_registries())
def test_every_unit_stops_exactly_once(registry):
    sequencer = run_shutdown(registry)
    stopped = sequencer.report.stop_order
    expected = {n for n in registry.names if n != "goal.target"}
    assert set(stopped) == expected
    assert len(stopped) == len(expected)


@fewer_examples
@given(dag_registries())
def test_stop_order_is_reverse_of_boot_order(registry):
    """A unit stops strictly before anything it requires (or orders
    after) stops."""
    sequencer = run_shutdown(registry)
    position = {name: i for i, name in enumerate(sequencer.report.stop_order)}
    for name in registry.names:
        if name == "goal.target":
            continue
        unit = registry.get(name)
        for dep in unit.requires + unit.after:
            if dep in position:
                assert position[name] < position[dep], \
                    f"{name} must stop before its dependency {dep}"


@fewer_examples
@given(dag_registries())
def test_shutdown_is_deterministic(registry):
    first = run_shutdown(registry).report
    second = run_shutdown(registry).report
    assert first.stop_order == second.stop_order
    assert first.duration_ns == second.duration_ns
