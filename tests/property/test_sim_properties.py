"""Property-based tests of the simulation engine's core invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.quantities import format_ns, transfer_time_ns
from repro.sim import Compute, Simulator, Timeout
from repro.sim.events import EventQueue


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=100))
def test_event_queue_pops_in_time_order_fifo_ties(times):
    queue = EventQueue()
    for index, time_ns in enumerate(times):
        queue.push(time_ns, lambda: None)
    popped = []
    while len(queue) > 0:
        event = queue.pop()
        popped.append((event.time_ns, event.seq))
    assert popped == sorted(popped)


@given(st.lists(st.integers(min_value=1, max_value=50_000_000), min_size=1,
                max_size=20),
       st.integers(min_value=1, max_value=8))
def test_cpu_work_conservation(demands, cores):
    """Total busy time equals total demand; wall time is bounded below by
    demand/cores and above by total demand (plus scheduling overhead)."""
    sim = Simulator(cores=cores, switch_cost_ns=0)

    def worker(ns):
        yield Compute(ns)

    for index, ns in enumerate(demands):
        sim.spawn(worker(ns), name=f"w{index}")
    sim.run()
    total = sum(demands)
    assert sim.cpu.stats.busy_ns == total
    assert sim.now >= -(-total // cores)  # ceil division lower bound
    assert sim.now <= total


@given(st.lists(st.integers(min_value=1, max_value=50_000_000), min_size=1,
                max_size=20))
def test_single_core_serializes_exactly(demands):
    sim = Simulator(cores=1, switch_cost_ns=0)

    def worker(ns):
        yield Compute(ns)

    for index, ns in enumerate(demands):
        sim.spawn(worker(ns), name=f"w{index}")
    sim.run()
    assert sim.now == sum(demands)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=10_000_000),
                          st.integers(min_value=0, max_value=10_000_000)),
                min_size=1, max_size=15),
       st.integers(min_value=1, max_value=4))
def test_mixed_workload_is_deterministic(segments, cores):
    def run_once():
        sim = Simulator(cores=cores)

        def worker(pairs):
            for compute_ns, sleep_ns in pairs:
                yield Compute(compute_ns)
                yield Timeout(sleep_ns)

        for index in range(3):
            sim.spawn(worker(list(segments)), name=f"w{index}")
        sim.run()
        return sim.now, sim.cpu.stats.busy_ns

    assert run_once() == run_once()


@given(st.integers(min_value=0, max_value=10**12),
       st.integers(min_value=1, max_value=10**9))
def test_transfer_time_non_negative_and_monotone(nbytes, bps):
    t = transfer_time_ns(nbytes, bps)
    assert t >= 0
    assert transfer_time_ns(nbytes + 1, bps) >= t
    if nbytes > 0:
        assert transfer_time_ns(nbytes, bps + 1) <= t


@given(st.integers(min_value=0, max_value=10**15))
def test_format_ns_always_renders(ns):
    text = format_ns(ns)
    assert any(unit in text for unit in ("ns", "us", "ms", "s"))
