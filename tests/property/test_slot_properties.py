"""Property-based tests of the A/B slot state machine's safety invariants.

Hypothesis drives arbitrary event sequences (stage / activate / boot-ok
/ boot-fail / rollback) against one simulated device and checks the two
promises real boot-control firmware makes after every single transition:

1. **Never brick** — the bootloader never ends up selecting an empty
   slot, no matter what sequence of updates and failures occurs.
2. **Never lose known-good** — the last health-confirmed generation
   stays flashed in one of the two slots until a *newer* generation has
   itself been health-confirmed; illegal flashes raise
   :class:`~repro.errors.SlotStateError` instead of proceeding.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.errors import SlotStateError
from repro.generations import SlotState, check_slot_invariants

import pytest


class SlotMachine(RuleBasedStateMachine):
    """One device from factory provisioning onward."""

    def __init__(self):
        super().__init__()
        self._serial = 0
        self.state = SlotState.provision(self._fresh())
        self.stored = {self.state.slot_a}
        self.confirmed = self.state.known_good  # model of known-good

    def _fresh(self) -> str:
        self._serial += 1
        return f"gen-{self._serial:04d}"

    # ------------------------------------------------------------- events

    @rule()
    def stage_new_generation(self):
        """An OTA flashes a brand-new image into the standby slot."""
        fingerprint = self._fresh()
        protected = (
            self.state.known_good is not None
            and self.state.standby_generation == self.state.known_good
            and self.state.active_generation != self.state.known_good)
        if protected:
            with pytest.raises(SlotStateError):
                self.state.stage(fingerprint)
        else:
            self.state = self.state.stage(fingerprint)
            self.stored.add(fingerprint)

    @rule()
    def stage_known_good_again(self):
        """Re-flashing the known-good image is always legal."""
        if self.state.known_good is None:
            return
        self.state = self.state.stage(self.state.known_good)

    @rule()
    def activate(self):
        """Flip the bootloader to the standby slot."""
        if self.state.standby_generation is None:
            with pytest.raises(SlotStateError):
                self.state.activate()
        else:
            self.state = self.state.activate()

    @rule()
    def boot_ok(self):
        """A healthy boot confirms the trial slot, if one is underway."""
        confirming = self.state.trial == self.state.active
        self.state = self.state.boot_ok()
        if confirming:
            self.confirmed = self.state.active_generation

    @rule(times=st.integers(1, 4))
    def boot_fail(self, times):
        """Failed health checks only ever bump the attempt counter."""
        before = self.state
        for _ in range(times):
            self.state = self.state.boot_fail()
        assert self.state.boot_attempts == before.boot_attempts + times
        assert self.state.active == before.active
        assert self.state.known_good == before.known_good

    @rule()
    def rollback(self):
        """Flip back to the standby slot after a failed trial."""
        if self.state.standby_generation is None:
            with pytest.raises(SlotStateError):
                self.state.rollback()
        else:
            self.state = self.state.rollback()

    # --------------------------------------------------------- invariants

    @invariant()
    def never_bricked(self):
        assert self.state.active_generation is not None

    @invariant()
    def known_good_never_lost(self):
        assert self.state.known_good == self.confirmed
        assert self.state.known_good in (self.state.slot_a,
                                         self.state.slot_b)

    @invariant()
    def library_checker_agrees(self):
        check_slot_invariants(self.state, self.stored)

    @invariant()
    def document_round_trips(self):
        assert SlotState.from_dict(self.state.to_dict()) == self.state


SlotMachine.TestCase.settings = settings(max_examples=40,
                                         stateful_step_count=30,
                                         deadline=None)
TestSlotMachine = SlotMachine.TestCase


# --------------------------------------------------- direct property tests


@settings(max_examples=40)
@given(st.text(min_size=1, max_size=16))
def test_provision_is_trusted(fingerprint):
    state = SlotState.provision(fingerprint)
    assert state.active_generation == fingerprint
    assert state.known_good == fingerprint
    check_slot_invariants(state, {fingerprint})


@settings(max_examples=40)
@given(st.lists(st.sampled_from(["ok", "fail"]), max_size=8))
def test_trial_survives_any_boot_noise_until_confirmed(outcomes):
    """Whatever mix of boot outcomes, known-good only advances on the
    first healthy boot of the trial slot — never on a failure."""
    state = SlotState.provision("base").stage("update").activate()
    for outcome in outcomes:
        state = state.boot_ok() if outcome == "ok" else state.boot_fail()
        check_slot_invariants(state, {"base", "update"})
    if "ok" in outcomes:
        assert state.known_good == "update"
        assert state.trial is None
    else:
        assert state.known_good == "base"
        assert state.trial == state.active


def test_unconfirmed_trial_protects_fallback_slot():
    """The exact brick scenario A/B slots exist to prevent: you cannot
    flash over the known-good copy while the new image is on probation."""
    state = SlotState.provision("base").stage("update").activate()
    with pytest.raises(SlotStateError, match="known-good"):
        state.stage("another-update")
    # ...but after the rollback, the standby slot is fair game again.
    rolled = state.rollback()
    assert rolled.active_generation == "base"
    assert rolled.stage("another-update").standby_generation \
        == "another-update"
