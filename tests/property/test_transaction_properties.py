"""Property-based tests of transaction-building invariants on random
dependency graphs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DependencyCycleError, TransactionError
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import Transaction
from repro.initsys.units import Unit


@st.composite
def random_dag_registries(draw):
    """Registries whose Requires/Wants/After edges point strictly backwards
    (guaranteeing acyclicity), plus a goal that wants a random subset."""
    count = draw(st.integers(min_value=1, max_value=18))
    names = [f"u{i:02d}.service" for i in range(count)]
    units = []
    for index, name in enumerate(names):
        earlier = names[:index]
        requires = draw(st.lists(st.sampled_from(earlier), max_size=2,
                                 unique=True)) if earlier else []
        wants = draw(st.lists(st.sampled_from(earlier), max_size=2,
                              unique=True)) if earlier else []
        after = draw(st.lists(st.sampled_from(earlier), max_size=2,
                              unique=True)) if earlier else []
        units.append(Unit(name=name, requires=requires, wants=wants,
                          after=after))
    pulled = draw(st.lists(st.sampled_from(names), min_size=1, max_size=count,
                           unique=True))
    units.append(Unit(name="goal.target", wants=pulled))
    return UnitRegistry(units)


@given(random_dag_registries())
def test_transaction_closure_is_complete(registry):
    """Everything a pulled unit requires/wants (transitively) is in the
    transaction."""
    txn = Transaction(registry, ["goal.target"])
    for name in txn.jobs:
        unit = registry.get(name)
        for dep in unit.requires + unit.wants:
            assert dep in txn, f"{name} pulled but its dep {dep} missing"


@given(random_dag_registries())
def test_transaction_edges_reference_only_jobs(registry):
    txn = Transaction(registry, ["goal.target"])
    for edge in txn.edges:
        assert edge.predecessor in txn
        assert edge.successor in txn


@given(random_dag_registries())
def test_transaction_ordering_is_acyclic(registry):
    """After building (and any weak-cycle breaking), a topological order
    exists over the ordering edges."""
    from graphlib import TopologicalSorter

    txn = Transaction(registry, ["goal.target"])
    sorter = TopologicalSorter()
    for name in txn.jobs:
        sorter.add(name)
    for edge in txn.edges:
        sorter.add(edge.successor, edge.predecessor)
    order = list(sorter.static_order())  # raises on a cycle
    assert set(order) == set(txn.jobs)


@given(random_dag_registries())
def test_backward_edges_never_drop_jobs(registry):
    """A DAG-by-construction registry needs no cycle breaking."""
    txn = Transaction(registry, ["goal.target"])
    assert txn.dropped_jobs == []


@given(random_dag_registries())
def test_transaction_is_deterministic(registry):
    a = Transaction(registry, ["goal.target"])
    b = Transaction(registry, ["goal.target"])
    assert set(a.jobs) == set(b.jobs)
    assert [(e.predecessor, e.successor, e.kind) for e in a.edges] == \
        [(e.predecessor, e.successor, e.kind) for e in b.edges]
