"""Property-based tests for unit-file parsing and unit round-trips."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnitParseError
from repro.initsys.unitfile import parse_unit_file, render_unit_file
from repro.initsys.units import ServiceType, SimCost, Unit

unit_name = st.from_regex(r"[a-z][a-z0-9-]{0,20}\.(service|socket|mount|target)",
                          fullmatch=True)
name_lists = st.lists(unit_name, max_size=4, unique=True)


@st.composite
def units(draw):
    name = draw(unit_name)
    deps = draw(name_lists)
    deps = [d for d in deps if d != name]
    cost = SimCost(
        fork_ns=draw(st.integers(0, 10**7)),
        exec_bytes=draw(st.integers(0, 10**8)),
        dynamic_link_ns=draw(st.integers(0, 10**7)),
        init_cpu_ns=draw(st.integers(0, 10**9)),
        rcu_syncs=draw(st.integers(0, 5)),
        hw_settle_ns=draw(st.integers(0, 10**8)),
        ready_extra_ns=draw(st.integers(0, 10**7)),
        processes=draw(st.integers(1, 4)),
    )
    return Unit(
        name=name,
        description=draw(st.text(alphabet=string.ascii_letters + " ",
                                 max_size=30)).strip(),
        service_type=draw(st.sampled_from(ServiceType)),
        requires=deps[:1],
        wants=deps[1:2],
        before=deps[2:3],
        after=deps[3:4],
        provides_paths=[f"/run/{name}"] if draw(st.booleans()) else [],
        waits_for_paths=[f"/dev/{name}"] if draw(st.booleans()) else [],
        cost=cost,
        static_build=draw(st.booleans()),
        bb_deferrable=draw(st.booleans()),
    )


@given(units())
def test_unit_round_trips_through_unit_file_text(unit):
    """Unit -> unit-file text -> parse -> Unit is the identity on every
    semantic field."""
    text = render_unit_file(unit.to_parsed())
    back = Unit.from_parsed(parse_unit_file(text, name=unit.name))
    assert back.name == unit.name
    assert back.service_type is unit.service_type
    assert back.requires == unit.requires
    assert back.wants == unit.wants
    assert back.before == unit.before
    assert back.after == unit.after
    assert back.provides_paths == unit.provides_paths
    assert back.waits_for_paths == unit.waits_for_paths
    assert back.cost == unit.cost
    assert back.static_build == unit.static_build
    assert back.bb_deferrable == unit.bb_deferrable


@given(st.text(max_size=400))
def test_parser_total_on_arbitrary_text(text):
    """The parser either succeeds or raises UnitParseError — never
    anything else."""
    try:
        parse_unit_file(text)
    except UnitParseError:
        pass


@given(st.lists(st.tuples(st.sampled_from(["Requires", "Wants", "After"]),
                          unit_name),
                min_size=1, max_size=8))
def test_list_accumulation_order_preserved(assignments):
    lines = ["[Unit]"] + [f"{key}={value}" for key, value in assignments]
    parsed = parse_unit_file("\n".join(lines))
    for key in ("Requires", "Wants", "After"):
        expected = [value for k, value in assignments if k == key]
        assert parsed.get_list("Unit", key) == expected
