"""Tests for recovery policies and outcome records."""

import pytest

from repro.errors import ConfigurationError
from repro.recovery import (DEFAULT_LADDER, RUNG_AS_CONFIGURED, RUNG_RESCUE,
                            RUNG_SNAPSHOT, AttemptRecord, RecoveryOutcome,
                            RecoveryPolicy, SnapshotPolicy)


def outcome(**overrides):
    defaults = dict(
        policy="p", seed=1, converged=True, rung=RUNG_AS_CONFIGURED,
        rungs=[AttemptRecord(RUNG_AS_CONFIGURED, "completed", 1000)],
        total_recovery_ns=1000, restart_history={}, masked_units=[],
        snapshot=None)
    defaults.update(overrides)
    return RecoveryOutcome(**defaults)


def test_default_ladder_order():
    assert DEFAULT_LADDER[0] == RUNG_SNAPSHOT
    assert DEFAULT_LADDER[-1] == RUNG_RESCUE
    assert RecoveryPolicy().ladder == DEFAULT_LADDER


@pytest.mark.parametrize("kwargs", [
    dict(label=""),
    dict(ladder=()),
    dict(ladder=("as-configured", "warp-speed")),
    dict(reboot_overhead_ns=-1),
    dict(forced_start_timeout_ns=-1),
    dict(restart_backoff_factor=0.5),
    dict(restart_jitter=1.5),
])
def test_invalid_policies_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        RecoveryPolicy(**kwargs)


def test_invalid_snapshot_policy_rejected():
    with pytest.raises(ConfigurationError):
        SnapshotPolicy(corrupt_rate=2.0)


def test_exit_codes():
    assert outcome().exit_code == 0
    assert outcome(rung="restart").exit_code == 3
    assert outcome(masked_units=["x.service"]).exit_code == 3
    assert outcome(converged=False, rung=None).exit_code == 1


def test_snapshot_convergence_is_clean():
    snap = outcome(rung=RUNG_SNAPSHOT,
                   snapshot={"intact": True, "verify_ns": 1, "restore_ns": 2})
    assert snap.clean and snap.exit_code == 0


def test_to_dict_matches_schema_keys():
    from repro.analysis.schema import (RECOVERY_KEYS, RECOVERY_RUNG_KEYS,
                                       validate_recovery_dict)

    document = outcome(restart_history={
        "a.service": {"attempts": 3, "delays_ns": [10, 20]}}).to_dict()
    assert set(document) == set(RECOVERY_KEYS)
    assert set(document["rungs"][0]) == set(RECOVERY_RUNG_KEYS)
    validate_recovery_dict(document)


def test_summary_mentions_rungs_and_restarts():
    text = outcome(restart_history={
        "a.service": {"attempts": 3, "delays_ns": [10, 20]}}).summary()
    assert "as-configured" in text
    assert "a.service" in text
    text = outcome(converged=False, rung=None).summary()
    assert "unrecoverable" in text
