"""Tests for the A/B slot-rollback rung and the boot-time regression gate."""

import pytest

from repro.analysis.schema import validate_recovery_dict
from repro.core.config import BBConfig
from repro.errors import ConfigurationError
from repro.faults import build_preset
from repro.recovery import (OUTCOME_COMPLETED, OUTCOME_FAILED,
                            OUTCOME_REGRESSED, OUTCOME_SKIPPED,
                            RUNG_AS_CONFIGURED, RUNG_SLOT_ROLLBACK,
                            BootSupervisor, RecoveryPolicy)
from repro.workloads import WORKLOAD_FACTORIES, opensource_tv_workload

AB_LADDER = (RUNG_AS_CONFIGURED, RUNG_SLOT_ROLLBACK)


def supervise(preset=None, seed=1, **policy_kwargs):
    plan = build_preset(preset, seed=seed) if preset else None
    policy = RecoveryPolicy(label="ab-slot", seed=seed, ladder=AB_LADDER,
                            **policy_kwargs)
    supervisor = BootSupervisor(opensource_tv_workload(), policy,
                                fault_plan=plan)
    return supervisor, supervisor.run()


# ---------------------------------------------------------------- rollback

def test_failing_unit_falls_back_to_known_good_slot():
    supervisor, outcome = supervise(
        "broken-tuner", base_bb=BBConfig.full(),
        fallback_workload="tv", fallback_bb=BBConfig.full())
    assert outcome.converged and outcome.rung == RUNG_SLOT_ROLLBACK
    assert [r.outcome for r in outcome.rungs] == [OUTCOME_FAILED,
                                                  OUTCOME_COMPLETED]
    # The fallback boot dropped the trial's fault plan entirely.
    assert supervisor.simulations[-1].fault_plan is None
    assert outcome.report is not None and not outcome.report.degraded
    validate_recovery_dict(outcome.to_dict())


def test_rollback_skipped_without_a_fallback_profile():
    _, outcome = supervise("broken-tuner", base_bb=BBConfig.full())
    assert not outcome.converged
    assert [r.outcome for r in outcome.rungs] == [OUTCOME_FAILED,
                                                  OUTCOME_SKIPPED]
    skipped = outcome.rungs[-1]
    assert skipped.rung == RUNG_SLOT_ROLLBACK and skipped.boot_ns == 0


def test_unknown_fallback_workload_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown fallback workload"):
        supervise("broken-tuner", base_bb=BBConfig.full(),
                  fallback_workload="not-a-device")


def test_fallback_charges_reboot_overhead_only_when_it_ran():
    _, failed = supervise("broken-tuner", base_bb=BBConfig.full())
    _, recovered = supervise("broken-tuner", base_bb=BBConfig.full(),
                             fallback_workload="tv",
                             fallback_bb=BBConfig.full())
    fallback_ns = recovered.rungs[-1].boot_ns
    # skipped rung adds nothing; a converging fallback adds only its boot.
    assert failed.total_recovery_ns == recovered.total_recovery_ns - fallback_ns


# --------------------------------------------------------- regression gate

def test_slow_boot_is_recorded_as_regressed_and_escalates():
    # tv/none boots in ~8.09 s; tv/full in ~3.51 s.  A 3.6 s ceiling marks
    # the vanilla boot regressed and accepts the BB-accelerated fallback.
    _, outcome = supervise(
        base_bb=BBConfig.none(), max_boot_ns=3_600_000_000,
        fallback_workload="tv", fallback_bb=BBConfig.full())
    assert outcome.converged and outcome.rung == RUNG_SLOT_ROLLBACK
    first, second = outcome.rungs
    assert first.outcome == OUTCOME_REGRESSED
    assert first.boot_ns > 3_600_000_000
    assert second.outcome == OUTCOME_COMPLETED
    assert second.boot_ns <= 3_600_000_000
    validate_recovery_dict(outcome.to_dict())


def test_gate_does_not_fire_on_fast_boots():
    _, outcome = supervise(base_bb=BBConfig.full(),
                           max_boot_ns=3_600_000_000,
                           fallback_workload="tv")
    assert outcome.converged and outcome.rung == RUNG_AS_CONFIGURED
    assert [r.outcome for r in outcome.rungs] == [OUTCOME_COMPLETED]


def test_gate_applies_to_the_fallback_slot_too():
    # A ceiling nobody meets: both rungs regress, the ladder is exhausted.
    _, outcome = supervise(base_bb=BBConfig.full(), max_boot_ns=1_000,
                           fallback_workload="tv",
                           fallback_bb=BBConfig.full())
    assert not outcome.converged
    assert [r.outcome for r in outcome.rungs] == [OUTCOME_REGRESSED,
                                                  OUTCOME_REGRESSED]


# ------------------------------------------------------------- determinism

def test_rollback_recovery_is_deterministic():
    runs = [supervise("broken-tuner", base_bb=BBConfig.full(),
                      fallback_workload="tv",
                      fallback_bb=BBConfig.full())[1].to_dict()
            for _ in range(2)]
    assert runs[0] == runs[1]


def test_policy_validates_new_fields():
    with pytest.raises(ConfigurationError, match="max_boot_ns"):
        RecoveryPolicy(max_boot_ns=0)
    with pytest.raises(ConfigurationError, match="fallback_workload"):
        RecoveryPolicy(fallback_workload="")
    # slot-rollback is a legal ladder rung even though it is not in the
    # default ladder.
    policy = RecoveryPolicy(ladder=AB_LADDER)
    assert RUNG_SLOT_ROLLBACK in policy.ladder


def test_every_registered_workload_is_a_legal_fallback():
    for name in WORKLOAD_FACTORIES:
        RecoveryPolicy(fallback_workload=name)
