"""End-to-end tests for the boot-recovery escalation ladder."""

import json

import pytest

from repro.analysis.export import report_to_json
from repro.analysis.schema import validate_recovery_dict
from repro.faults import PRESETS, build_preset
from repro.faults.plan import FaultPlan, ServiceFault
from repro.recovery import (RUNG_AS_CONFIGURED, RUNG_ISOLATE, RUNG_RESCUE,
                            RUNG_RESTART, RUNG_SNAPSHOT, BootSupervisor,
                            RecoveryOutcome, RecoveryPolicy, SnapshotPolicy)
from repro.verify import InvariantMonitor
from repro.workloads import opensource_tv_workload


def supervise(preset=None, seed=1, monitor=True, **policy_kwargs):
    plan = build_preset(preset, seed=seed) if preset else None
    policy = RecoveryPolicy(label=preset or "healthy", seed=seed,
                            **policy_kwargs)
    supervisor = BootSupervisor(
        opensource_tv_workload(), policy, fault_plan=plan,
        monitor=InvariantMonitor() if monitor else None)
    return supervisor.run()


# ------------------------------------------------------------- convergence

def test_healthy_boot_converges_clean_at_first_real_rung():
    outcome = supervise()
    assert outcome.converged and outcome.rung == RUNG_AS_CONFIGURED
    assert outcome.exit_code == 0
    assert len(outcome.rungs) == 1
    assert outcome.report is not None and not outcome.report.degraded
    # The recovery section rides on the final report and validates.
    assert outcome.report.recovery == outcome.to_dict()
    validate_recovery_dict(outcome.report.recovery)


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_every_fault_preset_converges_monitor_clean(preset):
    """The acceptance bar: every preset that defeats an unsupervised boot
    must converge at some ladder rung, invariant-clean throughout."""
    outcome = supervise(preset)
    assert outcome.converged, f"{preset} exhausted the ladder"
    assert outcome.rung is not None
    assert outcome.total_recovery_ns > 0
    assert outcome.rungs[-1].rung == outcome.rung
    validate_recovery_dict(outcome.to_dict())


def test_transient_burst_converges_at_restart_with_attempt_carryover():
    """The burst clears after 4 attempts; attempt counts carry across the
    supervised reboot, so the restart rung's 4 attempts (offset by the
    as-configured rung's one) get var.mount over the hump."""
    outcome = supervise("transient-storage-burst")
    assert outcome.rung == RUNG_RESTART
    assert outcome.exit_code == 3
    history = outcome.restart_history["var.mount"]
    assert history["attempts"] == 5  # 1 (as-configured) + 4 (restart rung)
    assert len(history["delays_ns"]) == 3
    # Exponential backoff with jitter: delays grow roughly geometrically.
    assert history["delays_ns"][1] > history["delays_ns"][0]
    assert history["delays_ns"][2] > history["delays_ns"][1]


def test_missing_device_escalates_to_rescue():
    outcome = supervise("missing-device")
    assert outcome.rung == RUNG_RESCUE
    assert outcome.exit_code == 3
    # The unit wedged on the absent device is masked out of the rescue
    # boot; its requirement chain (dbus etc.) survives.
    assert "fasttv.service" in outcome.masked_units
    assert "dbus.service" not in outcome.masked_units
    rungs = [record.rung for record in outcome.rungs]
    assert rungs[0] == RUNG_AS_CONFIGURED
    assert outcome.rungs[0].outcome == "wedged"
    assert outcome.report is not None
    assert outcome.report.recovery["rung"] == RUNG_RESCUE


def test_ladder_exhaustion_is_reported_not_raised():
    outcome = supervise("broken-tuner", ladder=(RUNG_AS_CONFIGURED,))
    assert not outcome.converged
    assert outcome.rung is None and outcome.report is None
    assert outcome.exit_code == 1
    assert outcome.degraded_report is not None
    assert "tuner.service" in outcome.rungs[0].failed_units
    validate_recovery_dict(outcome.to_dict())


def test_isolation_rung_drops_hostile_ordering():
    """A vendor unit hanging ahead of var.mount delays an as-configured
    boot by its full stall; the isolate rung drops the outside->inside
    ordering edge and completes without waiting for it."""
    stall_ns = 30_000_000_000
    plan = FaultPlan(seed=0, label="hanging-vendor", services=(
        ServiceFault(unit="vendor-early-00.service", hang_ns=stall_ns,
                     hang_rate=1.0),))
    workload = opensource_tv_workload()
    slow = BootSupervisor(
        workload, RecoveryPolicy(seed=1, ladder=(RUNG_AS_CONFIGURED,)),
        fault_plan=plan).run()
    fast = BootSupervisor(
        opensource_tv_workload(),
        RecoveryPolicy(seed=1, ladder=(RUNG_ISOLATE,)),
        fault_plan=plan).run()
    assert slow.converged and slow.rungs[0].boot_ns > stall_ns
    assert fast.converged and fast.rungs[0].boot_ns < stall_ns


# ---------------------------------------------------------------- snapshot

def test_intact_snapshot_short_circuits_the_ladder():
    outcome = supervise(snapshot=SnapshotPolicy(corrupt_rate=0.0))
    assert outcome.rung == RUNG_SNAPSHOT
    assert outcome.exit_code == 0
    assert outcome.report is None  # no userspace boot happened
    assert outcome.snapshot["intact"] is True
    assert outcome.snapshot["restore_ns"] > 0
    assert outcome.total_recovery_ns == outcome.rungs[0].boot_ns


def test_corrupt_snapshot_fails_over_to_full_boot():
    outcome = supervise(snapshot=SnapshotPolicy(corrupt_rate=1.0))
    assert outcome.rung == RUNG_AS_CONFIGURED
    assert outcome.snapshot["intact"] is False
    assert outcome.snapshot["verify_ns"] > 0
    assert outcome.rungs[0].rung == RUNG_SNAPSHOT
    assert outcome.rungs[0].outcome == "skipped"
    # The wasted verification time is charged to the recovery total.
    assert (outcome.total_recovery_ns
            == outcome.rungs[0].boot_ns + outcome.rungs[1].boot_ns)


def test_snapshot_skipped_when_third_party_apps_invalidate_it():
    from repro.kernel.snapshot import HibernationModel

    outcome = supervise(snapshot=SnapshotPolicy(
        model=HibernationModel(third_party_apps=True)))
    assert outcome.rung == RUNG_AS_CONFIGURED
    assert outcome.rungs[0].outcome == "skipped"
    assert outcome.rungs[0].boot_ns == 0  # gate costs nothing


# ------------------------------------------------------------- determinism

@pytest.mark.parametrize("preset", ["transient-storage-burst",
                                    "missing-device"])
def test_same_seed_replay_is_byte_identical(preset):
    def run_json():
        outcome = supervise(preset, seed=2,
                            snapshot=SnapshotPolicy(corrupt_rate=1.0))
        recovery = json.dumps(outcome.to_dict(), sort_keys=True)
        report = (report_to_json(outcome.report)
                  if outcome.report is not None else "")
        return recovery + report

    assert run_json() == run_json()


def test_different_seed_changes_the_backoff_history():
    a = supervise("transient-storage-burst", seed=1)
    b = supervise("transient-storage-burst", seed=5)
    assert (a.restart_history["var.mount"]["delays_ns"]
            != b.restart_history["var.mount"]["delays_ns"])


# ----------------------------------------------------------------- surface

def test_supervisor_records_every_simulation():
    outcome = supervise("transient-storage-burst")
    supervised_rungs = [r for r in outcome.rungs if r.rung != RUNG_SNAPSHOT
                        and r.outcome != "skipped"]
    assert len(supervised_rungs) == 2


def test_recovery_outcome_pickles():
    import pickle

    outcome = supervise("transient-storage-burst")
    clone = pickle.loads(pickle.dumps(outcome))
    assert isinstance(clone, RecoveryOutcome)
    assert clone.to_dict() == outcome.to_dict()


def test_on_failure_handler_injected_at_restart_rung():
    """The restart rung wires the policy's diagnostic handler onto the
    completion closure."""
    plan = build_preset("transient-storage-burst", seed=1)
    supervisor = BootSupervisor(opensource_tv_workload(),
                                RecoveryPolicy(seed=1), fault_plan=plan)
    supervisor.run()
    registry = supervisor.simulations[-1].manager.registry
    assert "recovery-notifier.service" in registry
    assert "recovery-notifier.service" in registry.get("var.mount").on_failure


def test_handler_injection_can_be_disabled():
    plan = build_preset("transient-storage-burst", seed=1)
    supervisor = BootSupervisor(
        opensource_tv_workload(),
        RecoveryPolicy(seed=1, on_failure_handler=None), fault_plan=plan)
    outcome = supervisor.run()
    assert outcome.converged
    assert "recovery-notifier.service" not in supervisor.simulations[-1].manager.registry
