"""Smoke tests for the perf benchmark harness."""

import json

from repro.runner.bench import (_LegacyEventQueue, _drive_queue, bench_cache,
                                bench_checkpoint, bench_event_queue,
                                build_record, checkpoint_matrix, write_record)
from repro.runner.branch import BACKEND_REPLAY
from repro.sim.events import EventQueue


def test_both_queues_process_identical_workloads():
    assert _drive_queue(EventQueue(), 500) == 500
    assert _drive_queue(_LegacyEventQueue(), 500) == 500


def test_microbenchmark_reports_speedup():
    result = bench_event_queue(events=2_000, repeats=1)
    assert result["optimized_events_per_sec"] > 0
    assert result["legacy_events_per_sec"] > 0
    assert result["speedup"] > 0


def test_cache_benchmark_reports_speedup():
    result = bench_cache(rounds=20, repeats=1)
    assert result["rounds"] == 20
    assert result["optimized_roundtrips_per_sec"] > 0
    assert result["legacy_roundtrips_per_sec"] > 0
    assert result["speedup"] > 0


def test_checkpoint_matrix_shares_one_prefix():
    jobs = checkpoint_matrix(cells=16)
    assert len(jobs) == 16
    assert len({job.fingerprint() for job in jobs}) == 16
    assert len({job.prefix_fingerprint() for job in jobs}) == 1


def test_checkpoint_benchmark_outputs_identical():
    result = bench_checkpoint(cells=8, backend=BACKEND_REPLAY)
    assert result["cells"] == 8
    assert result["backend"] == BACKEND_REPLAY
    assert result["outputs_identical"] is True
    assert result["speedup"] > 0
    assert result["runner"]["branched"] == 8


def test_record_roundtrips_as_json(tmp_path):
    record = build_record(jobs=1, events=2_000, skip_sweep=True,
                          skip_checkpoint=True)
    path = tmp_path / "BENCH_runner.json"
    write_record(record, str(path))
    loaded = json.loads(path.read_text())
    assert "event_queue" in loaded and "code_version" in loaded
    assert "cache" in loaded and "checkpoint" not in loaded
