"""Smoke tests for the perf benchmark harness."""

import json

from repro.runner.bench import (_LegacyEventQueue, _drive_queue,
                                bench_event_queue, build_record, write_record)
from repro.sim.events import EventQueue


def test_both_queues_process_identical_workloads():
    assert _drive_queue(EventQueue(), 500) == 500
    assert _drive_queue(_LegacyEventQueue(), 500) == 500


def test_microbenchmark_reports_speedup():
    result = bench_event_queue(events=2_000, repeats=1)
    assert result["optimized_events_per_sec"] > 0
    assert result["legacy_events_per_sec"] > 0
    assert result["speedup"] > 0


def test_record_roundtrips_as_json(tmp_path):
    record = build_record(jobs=1, events=2_000, skip_sweep=True)
    path = tmp_path / "BENCH_runner.json"
    write_record(record, str(path))
    loaded = json.loads(path.read_text())
    assert "event_queue" in loaded and "code_version" in loaded
