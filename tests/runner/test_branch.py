"""Checkpoint/fork branch runner: grouping, identity and caching.

The branch engine is only allowed to exist because it is invisible:
every branched cell must be canonically byte-identical to a from-scratch
run of the same job.  These tests pin that contract for both backends,
plus the fingerprint factoring and partitioning rules that route jobs
into it.
"""

import pickle

import pytest

from repro.core import BBConfig
from repro.core.degraded import DegradedBootReport
from repro.errors import SimulationError
from repro.faults import (DeferredFault, FaultPlan, PathFault, ServiceFault,
                          SettleFault)
from repro.runner import (BranchRunner, CheckpointSpec, ResultCache, SimJob,
                          SweepRunner, canonical_bytes, execute_job)
from repro.runner.branch import BACKEND_FORK, BACKEND_REPLAY, PROBE_KEY
from repro.workloads import opensource_tv_workload
from repro.workloads.tizen_tv import perturbed_tv_workload

BACKENDS = [BACKEND_REPLAY, BACKEND_FORK]


def _boot(plan=None, **kwargs):
    return SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                       fault_plan=plan, **kwargs)


def _matrix_jobs():
    """A small mixed matrix exercising every branch code path."""
    return [
        _boot(),  # null cell -> master report verbatim
        _boot(FaultPlan(seed=21, services=(
            ServiceFault(unit="logger.service", fail_attempts=1),))),
        _boot(FaultPlan(seed=22, services=(
            ServiceFault(unit="dbus.service", fail_attempts=99),))),  # degraded
        _boot(FaultPlan(seed=23, settles=(
            SettleFault(unit="fasttv.service", jitter=0.6),))),
        _boot(FaultPlan(seed=24, settles=(
            SettleFault(unit="logger.service", jitter=0.6),))),  # no divergence
        _boot(FaultPlan(seed=25, deferred=(
            DeferredFault(task="*", fail_attempts=1),))),
    ]


class TestFingerprintFactoring:
    def test_plans_share_prefix_fingerprint(self):
        jobs = _matrix_jobs()
        assert len({job.prefix_fingerprint() for job in jobs}) == 1
        assert len({job.fingerprint() for job in jobs}) == len(jobs)

    def test_prefix_fingerprint_tracks_prefix_inputs(self):
        base = _boot()
        assert (SimJob.boot(opensource_tv_workload, bb=BBConfig.none())
                .prefix_fingerprint() != base.prefix_fingerprint())
        assert (SimJob.boot(perturbed_tv_workload, 0, 0.3,
                            bb=BBConfig.full())
                .prefix_fingerprint() != base.prefix_fingerprint())
        assert (SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                            cores=2)
                .prefix_fingerprint() != base.prefix_fingerprint())

    def test_strategy_fields_outside_fingerprint(self):
        plan = FaultPlan(seed=1, deferred=(
            DeferredFault(task="*", fail_attempts=1),))
        plain = _boot(plan)
        tuned = _boot(plan, checkpoint=CheckpointSpec(divergence_ns=5),
                      label="tuned")
        assert plain.fingerprint() == tuned.fingerprint()
        assert plain.prefix_fingerprint() == tuned.prefix_fingerprint()

    def test_checkpoint_spec_rejects_negative_divergence(self):
        with pytest.raises(SimulationError):
            CheckpointSpec(divergence_ns=-1)


class TestBranchability:
    def test_boot_jobs_branch_by_default(self):
        assert _boot().branchable()
        assert _boot(FaultPlan(seed=1)).branchable()

    def test_path_plans_are_structural(self):
        plan = FaultPlan(seed=1, paths=(
            PathFault(path="/dev/x", delay_ns=1_000),))
        assert not _boot(plan).branchable()

    def test_non_boot_kinds_do_not_branch(self):
        assert not SimJob.recover(opensource_tv_workload).branchable()
        assert not SimJob.kernel(None).branchable()

    def test_spec_opt_out(self):
        assert not _boot(checkpoint=CheckpointSpec(enabled=False)).branchable()

    def test_prefix_job_strips_divergent_inputs(self):
        job = _boot(FaultPlan(seed=5, deferred=(
            DeferredFault(task="*", fail_attempts=1),)), label="cell")
        prefix = job.prefix_job()
        assert prefix.fault_plan is None
        assert prefix.checkpoint is None
        assert prefix.prefix_fingerprint() == job.prefix_fingerprint()

    def test_partition_routes_small_groups_to_rest(self):
        runner = BranchRunner(backend=BACKEND_REPLAY, min_group=3)
        entries = [(job.fingerprint(), job) for job in _matrix_jobs()[:2]]
        entries.append((SimJob.recover(opensource_tv_workload).fingerprint(),
                        SimJob.recover(opensource_tv_workload)))
        groups, rest = runner.partition(entries)
        assert groups == []
        assert len(rest) == 3

    def test_partition_groups_by_prefix(self):
        jobs = _matrix_jobs() + [
            SimJob.boot(opensource_tv_workload, bb=BBConfig.none()),
            SimJob.boot(perturbed_tv_workload, 0, 0.3, bb=BBConfig.full()),
        ]
        runner = BranchRunner(backend=BACKEND_REPLAY, min_group=3)
        groups, rest = runner.partition(
            [(job.fingerprint(), job) for job in jobs])
        assert [len(g) for g in groups] == [6]
        assert len(rest) == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            BranchRunner(backend="teleport")


@pytest.fixture(scope="module")
def scratch_results():
    """From-scratch ground truth for the mixed matrix, computed once."""
    return {job.fingerprint(): execute_job(job) for job in _matrix_jobs()}


class TestBranchIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_branched_equals_scratch(self, backend, workers, scratch_results):
        jobs = _matrix_jobs()
        runner = BranchRunner(backend=backend, jobs=workers, min_group=2)
        groups, rest = runner.partition(
            [(job.fingerprint(), job) for job in jobs])
        assert rest == []
        results = runner.run_group(groups[0])
        assert set(results) == set(scratch_results)
        for fingerprint, branched in results.items():
            assert (canonical_bytes(branched)
                    == canonical_bytes(scratch_results[fingerprint]))
        assert runner.stats.no_divergence == 2  # null cell + inert settle
        assert runner.stats.branched == len(jobs)
        if backend == BACKEND_FORK:
            assert runner.stats.forked == 4
        else:
            assert runner.stats.replayed == 4

    def test_degraded_cell_survives_branching(self, scratch_results):
        degraded = [value for value in scratch_results.values()
                    if isinstance(value, DegradedBootReport)]
        assert len(degraded) == 1  # dbus fail_attempts=99 wedges the boot

    def test_inert_plan_reports_zero_tally(self, scratch_results):
        jobs = _matrix_jobs()
        inert = jobs[4]  # settle jitter on a settle-free unit
        report = scratch_results[inert.fingerprint()]
        assert all(v == 0 for v in report.injected_faults.values())

    def test_probe_cached_across_runs(self):
        cache = ResultCache()
        jobs = _matrix_jobs()
        entries = [(job.fingerprint(), job) for job in jobs]
        first = BranchRunner(cache=cache, backend=BACKEND_REPLAY, min_group=2)
        first.run_group(first.partition(entries)[0][0])
        assert first.stats.probe_boots == 1
        assert first.stats.probe_cache_hits == 0
        key = PROBE_KEY + jobs[0].prefix_fingerprint()
        assert cache.get(key) is not None
        second = BranchRunner(cache=cache, backend=BACKEND_REPLAY, min_group=2)
        second.run_group(second.partition(entries)[0][0])
        assert second.stats.probe_boots == 0
        assert second.stats.probe_cache_hits == 1


class TestSweepIntegration:
    def _jobs_with_fallback(self):
        return _matrix_jobs() + [_boot(FaultPlan(seed=31, paths=(
            PathFault(path="/dev/branch_test", delay_ns=50_000_000),)))]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_branched_sweep_matches_plain_sweep(self, backend):
        jobs = self._jobs_with_fallback()
        plain = SweepRunner(jobs=1).run(jobs)
        runner = SweepRunner(jobs=1, branch=True, branch_backend=backend,
                             min_branch_group=2)
        branched = runner.run(jobs)
        assert len(branched) == len(plain)
        for a, b in zip(branched, plain):
            assert canonical_bytes(a) == canonical_bytes(b)
        assert runner.stats.branched == 6
        assert runner.stats.executed == 1  # the structural paths cell
        assert runner.stats.prefix_boots >= 1

    def test_branch_results_enter_the_cache(self):
        runner = SweepRunner(jobs=1, branch=True,
                             branch_backend=BACKEND_REPLAY,
                             min_branch_group=2)
        jobs = _matrix_jobs()
        runner.run(jobs)
        again = runner.run(jobs)
        assert runner.stats.cache_hits == len(jobs)
        assert len(again) == len(jobs)

    def test_branch_disabled_by_default(self):
        runner = SweepRunner(jobs=1)
        runner.run(_matrix_jobs()[:2])
        assert runner.stats.branched == 0
        assert runner.stats.executed == 2


class TestCanonicalBytes:
    def test_set_order_insensitive(self):
        left = frozenset({"alpha", "beta", "gamma"})
        right = pickle.loads(pickle.dumps(frozenset(
            ["gamma", "beta", "alpha"])))
        assert canonical_bytes(left) == canonical_bytes(right)

    def test_nested_structures(self):
        a = {"k": [frozenset({1, 2}), (3, {4, 5})]}
        b = {"k": [frozenset({2, 1}), (3, {5, 4})]}
        assert canonical_bytes(a) == canonical_bytes(b)

    def test_distinguishes_values(self):
        assert canonical_bytes({"a": 1}) != canonical_bytes({"a": 2})
        assert canonical_bytes((1, 2)) != canonical_bytes([1, 2])
