"""Pickle-bytes storage semantics of :class:`ResultCache`.

The cache stores each result as one canonical pickle blob and
materialises a fresh object per ``get`` — cheaper than the deepcopy it
replaced, and safer: callers can mutate what they get back without ever
reaching shared state.  These tests pin the blob-level contract the
implementation relies on.
"""

import pickle
from dataclasses import dataclass, field

from repro.runner import ResultCache


@dataclass
class _Payload:
    """Module-level so disk round-trips can re-import it."""
    values: dict = field(default_factory=dict)
    tags: frozenset = frozenset()


def _payload():
    return _Payload(values={"a": 1, "b": [2, 3]}, tags=frozenset({"x", "y"}))


class TestMemoryBlobs:
    def test_memory_layer_holds_bytes_not_objects(self):
        cache = ResultCache()
        cache.put("k", _payload())
        blob = cache._memory["k"]
        assert isinstance(blob, bytes)
        assert pickle.loads(blob) == _payload()

    def test_get_materialises_a_fresh_object_each_time(self):
        cache = ResultCache()
        cache.put("k", _payload())
        _, first = cache.get("k")
        _, second = cache.get("k")
        assert first == second
        assert first is not second
        first.values["a"] = 999
        first.values["b"].append(4)
        assert second == _payload()  # mutation never leaks back

    def test_put_snapshots_at_store_time(self):
        cache = ResultCache()
        original = _payload()
        cache.put("k", original)
        original.values.clear()
        _, cached = cache.get("k")
        assert cached == _payload()

    def test_miss_and_stats(self):
        cache = ResultCache()
        hit, value = cache.get("absent")
        assert not hit and value is None
        cache.put("k", _payload())
        cache.get("k")
        assert cache.stats.stores == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1


class TestDiskBlobs:
    def test_disk_file_is_the_memory_blob(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", _payload())
        on_disk = (tmp_path / "k.pkl").read_bytes()
        assert on_disk == cache._memory["k"]

    def test_disk_hit_rememoizes_the_blob(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.put("k", _payload())
        reader = ResultCache(tmp_path)
        hit, value = reader.get("k")
        assert hit and value == _payload()
        assert reader.stats.disk_hits == 1
        assert reader._memory["k"] == writer._memory["k"]
        hit, again = reader.get("k")
        assert hit and reader.stats.memory_hits == 1
        assert again is not value
