"""Regression tests: corrupt on-disk cache entries must be detected,
counted, and unlinked — never silently treated as plain misses forever."""

import pickle
import sys

import pytest

from repro.runner import ResultCache


class _Payload:
    """Module-level class so pickle stores it by reference."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, _Payload) and other.value == self.value


def _entry_path(cache, key):
    return cache._disk_path(key)


def test_garbage_bytes_are_unlinked_and_counted(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("key", {"ok": 1})
    path = _entry_path(cache, "key")
    path.write_bytes(b"\x00not a pickle at all")
    cache._memory.clear()

    hit, value = cache.get("key")
    assert not hit and value is None
    assert cache.stats.disk_errors == 1
    assert cache.stats.misses == 1
    assert not path.exists()  # junk removed, cannot fail again
    # A rewrite makes the key healthy again.
    cache.put("key", {"ok": 2})
    cache._memory.clear()
    assert cache.get("key") == (True, {"ok": 2})


def test_torn_write_truncated_pickle(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("key", list(range(100)))
    path = _entry_path(cache, "key")
    path.write_bytes(path.read_bytes()[:7])  # simulate a torn write
    cache._memory.clear()

    hit, _ = cache.get("key")
    assert not hit
    assert cache.stats.disk_errors == 1
    assert not path.exists()


def test_stale_class_reference_is_a_disk_error(tmp_path, monkeypatch):
    """An entry pickled against a class that no longer exists raises
    AttributeError inside pickle.load; that is corruption, not a crash."""
    cache = ResultCache(tmp_path)
    cache.put("key", _Payload(5))
    cache._memory.clear()
    monkeypatch.delattr(sys.modules[__name__], "_Payload")

    hit, _ = cache.get("key")
    assert not hit
    assert cache.stats.disk_errors == 1
    assert not _entry_path(cache, "key").exists()


def test_empty_file_is_a_disk_error(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.disk_dir / "key.pkl"
    cache.disk_dir.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"")  # EOFError from pickle.load

    hit, _ = cache.get("key")
    assert not hit
    assert cache.stats.disk_errors == 1
    assert not path.exists()


def test_absent_entry_is_a_plain_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path)
    hit, _ = cache.get("nothing")
    assert not hit
    assert cache.stats.misses == 1
    assert cache.stats.disk_errors == 0


def test_healthy_entries_unaffected(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a", _Payload(1))
    cache._memory.clear()
    assert cache.get("a") == (True, _Payload(1))
    assert cache.stats.disk_hits == 1
    assert cache.stats.disk_errors == 0
    assert cache.stats.hit_rate == 1.0
