"""LRU size cap on the disk cache layer (``ResultCache(max_bytes=...)``)."""

import os

from repro.runner import ResultCache


def _disk_keys(tmp_path):
    return {path.stem for path in tmp_path.glob("*.pkl")}


def _age(tmp_path, key, seconds):
    """Push an entry's mtime into the past (mtime is the LRU clock)."""
    path = tmp_path / f"{key}.pkl"
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestEvictionOrder:
    def test_oldest_entries_evicted_first(self, tmp_path):
        blob = "x" * 100  # ~120 pickled bytes per entry
        cache = ResultCache(tmp_path, max_bytes=400)
        for index in range(3):
            cache.put(f"k{index}", blob)
            _age(tmp_path, f"k{index}", seconds=100 - index)
        cache.put("k3", blob)  # pushes past the cap
        assert "k0" not in _disk_keys(tmp_path)
        assert "k3" in _disk_keys(tmp_path)

    def test_hit_refreshes_recency(self, tmp_path):
        blob = "x" * 100
        cache = ResultCache(tmp_path, max_bytes=400)
        for index in range(3):
            cache.put(f"k{index}", blob)
            _age(tmp_path, f"k{index}", seconds=100 - index)
        # Re-read k0 from disk through a fresh cache: its mtime refreshes,
        # so the next eviction takes k1 instead.
        reader = ResultCache(tmp_path, max_bytes=400)
        hit, _ = reader.get("k0")
        assert hit and reader.stats.disk_hits == 1
        reader.put("k3", blob)
        keys = _disk_keys(tmp_path)
        assert "k0" in keys
        assert "k1" not in keys

    def test_entry_just_written_is_never_evicted(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10)  # smaller than any entry
        cache.put("huge", "x" * 1000)
        assert "huge" in _disk_keys(tmp_path)


class TestEvictionStats:
    def test_evictions_are_counted(self, tmp_path):
        blob = "x" * 100
        cache = ResultCache(tmp_path, max_bytes=250)
        for index in range(4):
            cache.put(f"k{index}", blob)
            _age(tmp_path, f"k{index}", seconds=100 - index)
        assert cache.stats.evictions == 2
        assert len(_disk_keys(tmp_path)) == 2

    def test_no_cap_means_no_evictions(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(20):
            cache.put(f"k{index}", "x" * 100)
        assert cache.stats.evictions == 0
        assert len(_disk_keys(tmp_path)) == 20

    def test_evicted_entry_is_gone_from_memory_too(self, tmp_path):
        blob = "x" * 100
        cache = ResultCache(tmp_path, max_bytes=150)
        cache.put("old", blob)
        _age(tmp_path, "old", seconds=100)
        cache.put("new", blob)
        hit, _ = cache.get("old")
        assert not hit
        assert cache.stats.evictions == 1
