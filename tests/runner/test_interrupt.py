"""Graceful sweep teardown when the pool breaks or the user interrupts.

Regression suite for the orphaned-worker failure mode: a worker dying
mid-sweep (OOM kill, segfault, ``os._exit``) used to surface as a raw
``BrokenProcessPool`` with live child processes left behind; Ctrl-C left
pending futures queued on a pool nobody would ever drain.
"""

import os

import pytest

from repro.core import BBConfig
from repro.errors import RunnerError
from repro.runner import SimJob, SweepRunner
from repro.workloads.tizen_tv import perturbed_tv_workload


def _lethal_workload(seed: int):
    """A workload factory that kills its worker process outright."""
    os._exit(13)


class TestBrokenPool:
    def test_dead_worker_surfaces_as_runner_error(self):
        jobs = [SimJob.boot(_lethal_workload, seed) for seed in range(2)]
        with SweepRunner(jobs=2) as runner:
            with pytest.raises(RunnerError, match="worker pool broke"):
                runner.run(jobs)
            # The broken pool was reaped, not orphaned.
            assert runner._pool is None

    def test_runner_is_usable_after_pool_breakage(self):
        lethal = [SimJob.boot(_lethal_workload, seed) for seed in range(2)]
        healthy = [SimJob.boot(perturbed_tv_workload, seed, 0.3,
                               bb=BBConfig.full()) for seed in range(2)]
        with SweepRunner(jobs=2) as runner:
            with pytest.raises(RunnerError):
                runner.run(lethal)
            results = runner.run(healthy)  # lazily builds a fresh pool
        assert len(results) == 2
        assert all(r.boot_complete_ms > 0 for r in results)


class _InterruptedPool:
    """Stands in for a pool whose map() is interrupted by Ctrl-C."""

    def __init__(self):
        self.shutdown_calls = []

    def map(self, *args, **kwargs):
        raise KeyboardInterrupt

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append((wait, cancel_futures))


class TestKeyboardInterrupt:
    def test_interrupt_cancels_pending_and_shuts_down(self):
        jobs = [SimJob.boot(perturbed_tv_workload, seed, 0.3,
                            bb=BBConfig.full()) for seed in range(3)]
        runner = SweepRunner(jobs=2)
        pool = _InterruptedPool()
        runner._pool = pool
        with pytest.raises(RunnerError, match="sweep interrupted") as info:
            runner.run(jobs)
        assert isinstance(info.value.__cause__, KeyboardInterrupt)
        # Pending futures cancelled, workers awaited, pool forgotten.
        assert pool.shutdown_calls == [(True, True)]
        assert runner._pool is None
