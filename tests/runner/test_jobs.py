"""Tests for SimJob fingerprints and execution."""

import pytest

from repro.core import BBConfig, BootSimulation
from repro.errors import SimulationError
from repro.kernel.config import KernelConfig
from repro.runner import SimJob, execute_job
from repro.runner.jobs import canonical_repr
from repro.workloads import opensource_tv_workload
from repro.workloads.tizen_tv import perturbed_tv_workload


class TestFingerprint:
    def test_equal_jobs_equal_fingerprints(self):
        a = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        b = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        assert a.fingerprint() == b.fingerprint()

    def test_label_does_not_affect_fingerprint(self):
        a = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(), label="x")
        b = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(), label="y")
        assert a.fingerprint() == b.fingerprint()

    def test_config_changes_fingerprint(self):
        full = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        none = SimJob.boot(opensource_tv_workload, bb=BBConfig.none())
        one_off = SimJob.boot(
            opensource_tv_workload,
            bb=BBConfig.full().with_feature("rcu_booster", False))
        assert len({full.fingerprint(), none.fingerprint(),
                    one_off.fingerprint()}) == 3

    def test_cores_change_fingerprint(self):
        a = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(), cores=2)
        b = SimJob.boot(opensource_tv_workload, bb=BBConfig.full(), cores=4)
        assert a.fingerprint() != b.fingerprint()

    def test_seed_changes_fingerprint(self):
        a = SimJob.boot(perturbed_tv_workload, 0, 0.3)
        b = SimJob.boot(perturbed_tv_workload, 1, 0.3)
        assert a.fingerprint() != b.fingerprint()

    def test_kernel_config_changes_fingerprint(self):
        a = SimJob.kernel(KernelConfig.unoptimized())
        b = SimJob.kernel(KernelConfig())
        assert a.fingerprint() != b.fingerprint()

    def test_non_module_level_factory_rejected(self):
        with pytest.raises(SimulationError):
            SimJob.boot(lambda: opensource_tv_workload())


class TestCanonicalRepr:
    def test_frozenset_is_sorted(self):
        assert canonical_repr(frozenset({"b", "a"})) == \
            canonical_repr(frozenset({"a", "b"}))

    def test_dict_is_sorted(self):
        assert canonical_repr({"b": 1, "a": 2}) == canonical_repr(
            dict([("a", 2), ("b", 1)]))

    def test_callable_by_qualified_name(self):
        assert "opensource_tv_workload" in canonical_repr(
            opensource_tv_workload)


class TestExecute:
    def test_boot_job_matches_direct_simulation(self):
        job = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        via_job = execute_job(job)
        direct = BootSimulation(opensource_tv_workload(),
                                BBConfig.full()).run()
        assert via_job == direct

    def test_kernel_job_returns_total_ns(self):
        total = execute_job(SimJob.kernel(KernelConfig()))
        assert isinstance(total, int) and total > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            execute_job(SimJob(kind="mystery"))

    def test_unknown_preset_rejected(self):
        with pytest.raises(SimulationError):
            execute_job(SimJob.kernel(KernelConfig(), platform_preset="nope"))
