"""The scheduler layer: batch cuts, single-flight, fair-share, delivery."""

import pytest

from repro.core import BBConfig
from repro.errors import ConfigurationError
from repro.runner import (JobScheduler, ResultCache, SimJob, plan_batch,
                          resolve_worker_count)
from repro.runner.schedule import DONE, PENDING, RUNNING
from repro.workloads import opensource_tv_workload
from repro.workloads.tizen_tv import perturbed_tv_workload


def _job(seed: int = 0) -> SimJob:
    return SimJob.boot(perturbed_tv_workload, seed, 0.3, bb=BBConfig.full())


class TestResolveWorkerCount:
    def test_none_defaults_to_cpu_count(self):
        import os
        assert resolve_worker_count(None) == (os.cpu_count() or 1)

    def test_valid_counts_pass_through(self):
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(7) == 7

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_below_one_is_rejected(self, bad):
        with pytest.raises(ConfigurationError, match=">= 1"):
            resolve_worker_count(bad)


class TestPlanBatch:
    def test_dedup_and_cache_cut(self):
        cache = ResultCache()
        jobs = [_job(0), _job(1), _job(0)]
        plan = plan_batch(jobs, cache)
        assert plan.deduplicated == 1
        assert plan.cache_hits == 0
        assert [fp for fp, _ in plan.missing] == [jobs[0].fingerprint(),
                                                  jobs[1].fingerprint()]
        cache.put(jobs[0].fingerprint(), "cached!")
        replan = plan_batch(jobs, cache)
        assert replan.cache_hits == 1
        assert replan.results[jobs[0].fingerprint()] == "cached!"
        assert len(replan.missing) == 1

    def test_fingerprints_are_positional(self):
        jobs = [_job(1), _job(0), _job(1)]
        plan = plan_batch(jobs, ResultCache())
        assert plan.fingerprints == [job.fingerprint() for job in jobs]


class TestSingleFlight:
    def test_duplicate_submissions_dispatch_once(self):
        scheduler = JobScheduler()
        tickets = [scheduler.submit("a", _job(0)) for _ in range(3)]
        batch = scheduler.next_batch(10)
        assert len(batch) == 1
        assert scheduler.stats.coalesced == 2
        assert tickets[0].state == RUNNING
        assert tickets[1].state == PENDING
        scheduler.complete(batch[0][0], "result")
        assert all(t.state == DONE for t in tickets)
        assert [t.result for t in scheduler.drain("a")] == ["result"] * 3

    def test_completed_fingerprint_answers_from_cache(self):
        scheduler = JobScheduler()
        scheduler.submit("a", _job(0))
        (fingerprint, _), = scheduler.next_batch(1)
        scheduler.complete(fingerprint, "result")
        ticket = scheduler.submit("b", _job(0))
        assert ticket.state == DONE
        assert ticket.cached
        assert scheduler.next_batch(10) == []

    def test_failure_is_not_cached_so_resubmission_retries(self):
        scheduler = JobScheduler()
        scheduler.submit("a", _job(0))
        (fingerprint, _), = scheduler.next_batch(1)
        clients = scheduler.fail(fingerprint, "boom")
        assert clients == ["a"]
        ticket, = scheduler.drain("a")
        assert ticket.error == "boom"
        retry = scheduler.submit("a", _job(0))
        assert retry.state == PENDING
        assert len(scheduler.next_batch(10)) == 1


class TestFairShareAndPriority:
    def test_round_robin_across_clients(self):
        scheduler = JobScheduler()
        for seed in range(4):
            scheduler.submit("flood", _job(seed))
        scheduler.submit("small", _job(100))
        order = [fp for fp, _ in scheduler.next_batch(10)]
        # The small client's single job must dispatch second, not fifth.
        assert order[1] == _job(100).fingerprint()

    def test_higher_priority_band_dispatches_first(self):
        scheduler = JobScheduler()
        scheduler.submit("a", _job(0), priority=0)
        scheduler.submit("a", _job(1), priority=5)
        order = [fp for fp, _ in scheduler.next_batch(10)]
        assert order == [_job(1).fingerprint(), _job(0).fingerprint()]


class TestDelivery:
    def test_drain_preserves_submission_order(self):
        scheduler = JobScheduler()
        scheduler.submit("a", _job(0))
        scheduler.submit("a", _job(1))
        batch = dict(scheduler.next_batch(10))
        # Complete in reverse order; delivery must still be 0 then 1.
        scheduler.complete(_job(1).fingerprint(), "one")
        assert scheduler.drain("a") == []  # head-of-line not done yet
        scheduler.complete(_job(0).fingerprint(), "zero")
        assert [t.result for t in scheduler.drain("a")] == ["zero", "one"]
        assert batch  # both dispatched

    def test_forget_client_drops_waiters_but_not_peers(self):
        scheduler = JobScheduler()
        kept = scheduler.submit("keep", _job(0))
        scheduler.submit("gone", _job(0))
        assert scheduler.forget_client("gone") == 1
        (fingerprint, _), = scheduler.next_batch(10)
        scheduler.complete(fingerprint, "result")
        assert kept.result == "result"
        assert scheduler.drain("gone") == []

    def test_unwanted_queued_work_is_skipped(self):
        scheduler = JobScheduler()
        scheduler.submit("gone", _job(0))
        scheduler.forget_client("gone")
        assert scheduler.next_batch(10) == []
        assert scheduler.idle


class TestSweepRunnerUsesPlan:
    def test_sweep_stats_still_count_dedup_and_hits(self):
        from repro.runner import SweepRunner

        runner = SweepRunner()
        job = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        runner.run([job, job])
        runner.run([job])
        assert runner.stats.deduplicated == 1
        assert runner.stats.cache_hits == 1
        assert runner.stats.executed == 1
