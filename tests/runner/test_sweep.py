"""Runner determinism and cache soundness.

The contract under test: a parallel run is bit-identical to the serial
path, and a cache hit is indistinguishable from a fresh simulation.
"""

import pytest

from repro.core import BBConfig
from repro.experiments import scaling, variance
from repro.runner import ResultCache, SimJob, SweepRunner, execute_job
from repro.workloads import opensource_tv_workload
from repro.workloads.tizen_tv import perturbed_tv_workload


def _sample_jobs():
    return [
        SimJob.boot(opensource_tv_workload, bb=BBConfig.full()),
        SimJob.boot(opensource_tv_workload, bb=BBConfig.none()),
        SimJob.boot(perturbed_tv_workload, 0, 0.3, bb=BBConfig.full()),
        SimJob.boot(opensource_tv_workload, bb=BBConfig.full()),  # duplicate
    ]


class TestDeterminism:
    def test_parallel_results_identical_to_serial(self):
        jobs = _sample_jobs()
        serial = SweepRunner(jobs=1).run(jobs)
        with SweepRunner(jobs=2) as runner:
            parallel = runner.run(jobs)
        assert parallel == serial

    def test_parallel_experiment_renders_identically(self):
        factors = (0.5, 1.0)
        serial = scaling.render(scaling.run(factors, runner=SweepRunner()))
        with SweepRunner(jobs=2) as runner:
            parallel = scaling.render(scaling.run(factors, runner=runner))
        assert parallel == serial

    def test_results_return_in_submission_order(self):
        jobs = _sample_jobs()
        results = SweepRunner().run(jobs)
        assert results[0] == results[3]
        assert results[0].features and not results[1].features


class TestChunkedPool:
    def test_chunked_map_is_order_and_result_identical(self):
        # Enough distinct jobs that the computed chunksize exceeds 1
        # (len // (jobs * 4) = 24 // 8 = 3): batching per worker
        # round-trip must not reorder or alter results.
        jobs = [SimJob.boot(perturbed_tv_workload, seed, 0.3,
                            bb=BBConfig.full()) for seed in range(24)]
        serial = SweepRunner(jobs=1).run(jobs)
        with SweepRunner(jobs=2) as runner:
            chunked = runner.run(jobs)
        assert runner.stats.executed == 24
        assert chunked == serial


class TestDedupAndCache:
    def test_duplicate_jobs_simulated_once(self):
        runner = SweepRunner()
        runner.run(_sample_jobs())
        assert runner.stats.submitted == 4
        assert runner.stats.deduplicated == 1
        assert runner.stats.executed == 3

    def test_cache_hit_equals_fresh_run(self):
        job = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        runner = SweepRunner()
        first = runner.run_one(job)
        second = runner.run_one(job)
        assert runner.stats.executed == 1
        assert runner.stats.cache_hits == 1
        assert second == first == execute_job(job)

    def test_cache_hit_is_isolated_from_mutation(self):
        job = SimJob.boot(opensource_tv_workload, bb=BBConfig.full())
        runner = SweepRunner()
        first = runner.run_one(job)
        first.unit_ready_ns.clear()
        second = runner.run_one(job)
        assert second.unit_ready_ns

    def test_changed_config_misses_cache(self):
        runner = SweepRunner()
        runner.run_one(SimJob.boot(opensource_tv_workload, bb=BBConfig.full()))
        runner.run_one(SimJob.boot(
            opensource_tv_workload,
            bb=BBConfig.full().with_feature("preparser", False)))
        assert runner.stats.executed == 2
        assert runner.stats.cache_hits == 0

    def test_changed_seed_misses_cache(self):
        runner = SweepRunner()
        runner.run_one(SimJob.boot(perturbed_tv_workload, 0, 0.3))
        runner.run_one(SimJob.boot(perturbed_tv_workload, 1, 0.3))
        assert runner.stats.executed == 2
        assert runner.stats.cache_hits == 0

    def test_variance_experiment_shares_runner_cache(self):
        runner = SweepRunner()
        variance.run(instances=2, runner=runner)
        before = runner.stats.executed
        variance.run(instances=2, runner=runner)
        assert runner.stats.executed == before


class TestDiskCache:
    def test_disk_cache_survives_processes(self, tmp_path):
        job = SimJob.boot(opensource_tv_workload, bb=BBConfig.none())
        first_runner = SweepRunner(cache=ResultCache(tmp_path))
        first = first_runner.run_one(job)
        assert first_runner.stats.executed == 1

        # A brand-new runner (fresh memory) must hit the disk layer.
        second_runner = SweepRunner(cache=ResultCache(tmp_path))
        second = second_runner.run_one(job)
        assert second_runner.stats.executed == 0
        assert second_runner.cache.stats.disk_hits == 1
        assert second == first

    def test_torn_disk_entry_is_ignored(self, tmp_path):
        job = SimJob.boot(opensource_tv_workload, bb=BBConfig.none())
        (tmp_path / f"{job.fingerprint()}.pkl").write_bytes(b"not a pickle")
        runner = SweepRunner(cache=ResultCache(tmp_path))
        report = runner.run_one(job)
        assert runner.stats.executed == 1
        assert report.boot_complete_ms > 0


class TestStats:
    def test_savings_rate(self):
        runner = SweepRunner()
        runner.run(_sample_jobs())
        assert runner.stats.savings_rate == pytest.approx(0.25)

    def test_empty_run(self):
        runner = SweepRunner()
        assert runner.run([]) == []
        assert runner.stats.savings_rate == 0.0


class TestPrefilteredSweep:
    def _matrix(self):
        jobs = []
        for feature in ("rcu_booster", "preparser", "deferred_executor"):
            for enabled in (False, True):
                bb = BBConfig.none().with_feature(feature, enabled)
                jobs.append(SimJob.boot(opensource_tv_workload, bb=bb,
                                        cores=4))
        return jobs

    def test_frontier_des_matches_predictions_exactly(self):
        jobs = self._matrix()
        with SweepRunner() as runner:
            outcome = runner.run_prefiltered(jobs, top_k=2)
        assert len(outcome.predictions) == len(jobs)
        assert len(outcome.selected) == 2
        for index in outcome.selected:
            assert (outcome.results[index].boot_complete_ns
                    == outcome.predictions[index].boot_complete_ns)

    def test_frontier_is_the_predicted_minimum(self):
        jobs = self._matrix()
        with SweepRunner() as runner:
            outcome = runner.run_prefiltered(jobs, top_k=2)
        ranked = sorted(range(len(jobs)),
                        key=lambda i: (outcome.predictions[i]
                                       .boot_complete_ns, i))
        assert outcome.selected == ranked[:2]

    def test_stats_count_predictions_and_skips(self):
        jobs = self._matrix()
        with SweepRunner() as runner:
            outcome = runner.run_prefiltered(jobs, top_k=2)
            assert runner.stats.predicted == len(jobs)
            assert runner.stats.prefilter_skipped == len(jobs) - 2
            assert runner.stats.submitted == 2  # only the frontier ran
        assert outcome.log and "ranked analytically" in outcome.log[0]

    def test_faulted_jobs_are_rejected(self):
        from repro.errors import AnalysisError
        from repro.faults.plan import FaultPlan

        import dataclasses
        job = dataclasses.replace(
            SimJob.boot(opensource_tv_workload, bb=BBConfig.none()),
            fault_plan=FaultPlan())
        with SweepRunner() as runner, pytest.raises(AnalysisError):
            runner.run_prefiltered([job], top_k=1)
