"""The checkpoint seam: InjectorSlot transparency and divergence search.

The whole checkpoint/fork design rests on two properties tested here:
a slot's null answers are indistinguishable from having no injector at
all, and :func:`first_divergence` finds exactly the first recorded query
a real injector would answer differently.
"""

import pickle

import pytest

from repro.core import BBConfig, BootSimulation
from repro.errors import SimulationError
from repro.faults import (DeferredFault, FaultPlan, ServiceFault,
                          SettleFault, StorageFault)
from repro.sim.checkpoint import (DEFERRED, SERVICE, SETTLE, STORAGE,
                                  InjectorSlot, first_divergence)
from repro.workloads import opensource_tv_workload


def _null_boot(record=False):
    slot = InjectorSlot(record=record)
    simulation = BootSimulation(opensource_tv_workload(), BBConfig.full(),
                                injector_slot=slot)
    simulation.start()
    return slot, simulation.complete()


class TestSlotTransparency:
    def test_slot_boot_identical_to_plain_boot(self):
        plain = BootSimulation(opensource_tv_workload(),
                               BBConfig.full()).run()
        _, slotted = _null_boot()
        assert pickle.dumps(plain) == pickle.dumps(slotted)

    def test_recording_does_not_perturb(self):
        _, silent = _null_boot(record=False)
        slot, recorded = _null_boot(record=True)
        assert pickle.dumps(silent) == pickle.dumps(recorded)
        assert slot.records  # the probe actually captured queries

    def test_null_answers(self):
        slot = InjectorSlot()
        assert slot.storage_extra_ns(4096, False) == 0
        decision = slot.service_decision("a.service", 1)
        assert not decision.fail and decision.hang_ns == 0
        assert slot.module_decision("mod") == (False, 0)
        assert slot.settle_ns("a.service", 1, 777) == 777
        assert slot.deferred_fails("task", 1) is False
        assert slot.path_blocked("/dev/x") is False
        assert slot.blocked_paths == frozenset()
        assert slot.late_paths() == ()

    def test_record_kinds_and_times(self):
        slot, report = _null_boot(record=True)
        kinds = {record[0] for record in slot.records}
        assert {STORAGE, SERVICE, DEFERRED} <= kinds
        times = [record[-1] for record in slot.records]
        assert times == sorted(times)  # recorded in sim-time order
        assert all(t <= report.all_done_ns for t in times)


class TestSwap:
    def test_swap_seeds_storage_counter(self):
        slot = InjectorSlot()
        for _ in range(5):
            slot.storage_extra_ns(512, False)
        injector = FaultPlan(seed=1).compile()
        slot.swap(injector)
        assert injector._storage_requests == 5
        assert slot.swapped

    def test_double_swap_rejected(self):
        slot = InjectorSlot()
        slot.swap(FaultPlan(seed=1).compile())
        with pytest.raises(SimulationError):
            slot.swap(FaultPlan(seed=2).compile())

    def test_swapped_slot_forwards(self):
        plan = FaultPlan(seed=3, services=(
            ServiceFault(unit="x.service", fail_attempts=1),))
        slot = InjectorSlot()
        slot.swap(plan.compile())
        assert slot.service_decision("x.service", 1).fail
        assert not slot.service_decision("y.service", 1).fail


class TestFirstDivergence:
    @pytest.fixture(scope="class")
    def records(self):
        slot, _ = _null_boot(record=True)
        return slot.records

    def test_empty_plan_never_diverges(self, records):
        assert first_divergence(records, FaultPlan(seed=9).compile()) is None

    def test_service_fault_diverges_at_first_attempt_query(self, records):
        unit = next(r[1] for r in records if r[0] == SERVICE)
        when = next(r[3] for r in records
                    if r[0] == SERVICE and r[1] == unit and r[2] == 1)
        plan = FaultPlan(seed=9, services=(
            ServiceFault(unit=unit, fail_attempts=1),))
        assert first_divergence(records, plan.compile()) == when

    def test_deferred_fault_diverges_post_completion(self, records):
        task = next(r[1] for r in records if r[0] == DEFERRED)
        when = next(r[3] for r in records
                    if r[0] == DEFERRED and r[1] == task)
        plan = FaultPlan(seed=9, deferred=(
            DeferredFault(task=task, fail_attempts=1),))
        assert first_divergence(records, plan.compile()) == when
        service_times = [r[3] for r in records if r[0] == SERVICE]
        assert when > max(service_times)

    def test_settle_jitter_on_settle_free_unit_never_diverges(self, records):
        settle_units = {r[1] for r in records if r[0] == SETTLE}
        service_units = {r[1] for r in records if r[0] == SERVICE}
        unit = sorted(service_units - settle_units)[0]
        plan = FaultPlan(seed=9, settles=(
            SettleFault(unit=unit, jitter=0.9),))
        assert first_divergence(records, plan.compile()) is None

    def test_storage_fault_respects_request_index(self, records):
        plan = FaultPlan(seed=9, storage=(
            StorageFault(spike_rate=1.0, spike_ns=1_000),))
        when = first_divergence(records, plan.compile())
        first_storage = next(r[-1] for r in records if r[0] == STORAGE)
        assert when == first_storage

    def test_unknown_record_kind_raises(self):
        with pytest.raises(SimulationError):
            first_divergence([("martian", 0)], FaultPlan(seed=1).compile())


class TestConstructionGuards:
    def test_slot_and_plan_are_mutually_exclusive(self):
        with pytest.raises(SimulationError):
            BootSimulation(opensource_tv_workload(), BBConfig.full(),
                           fault_plan=FaultPlan(seed=1),
                           injector_slot=InjectorSlot())

    def test_install_plan_requires_slot(self):
        simulation = BootSimulation(opensource_tv_workload(),
                                    BBConfig.full())
        simulation.start()
        with pytest.raises(SimulationError):
            simulation.install_plan(FaultPlan(seed=1))

    def test_complete_requires_start(self):
        simulation = BootSimulation(opensource_tv_workload(),
                                    BBConfig.full())
        with pytest.raises(SimulationError):
            simulation.complete()
