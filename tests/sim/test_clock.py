"""Tests for the simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


def test_clock_starts_at_zero():
    assert SimClock().now == 0


def test_clock_starts_at_given_time():
    assert SimClock(start_ns=42).now == 42


def test_clock_rejects_negative_start():
    with pytest.raises(SimulationError):
        SimClock(start_ns=-1)


def test_clock_advances_forward():
    clock = SimClock()
    clock.advance_to(100)
    assert clock.now == 100
    clock.advance_to(100)  # advancing to the same time is allowed
    assert clock.now == 100


def test_clock_rejects_backwards_motion():
    clock = SimClock(start_ns=50)
    with pytest.raises(SimulationError):
        clock.advance_to(49)


def test_clock_repr_is_readable():
    assert "SimClock" in repr(SimClock(start_ns=1_000_000))
