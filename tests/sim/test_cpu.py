"""Tests for the multicore CPU model: parallelism limits, priorities, slicing."""

import pytest

from repro.errors import SimulationError
from repro.quantities import msec
from repro.sim import CPU, Compute, Simulator


def make_sim(cores, **kwargs):
    kwargs.setdefault("switch_cost_ns", 0)
    return Simulator(cores=cores, **kwargs)


def compute_worker(ns):
    yield Compute(ns)


def test_parallelism_is_bounded_by_core_count():
    # 4 tasks x 10 ms on 2 cores must take 20 ms, not 10.
    sim = make_sim(cores=2)
    for n in range(4):
        sim.spawn(compute_worker(msec(10)), name=f"w{n}")
    sim.run()
    assert sim.now == msec(20)


def test_enough_cores_run_fully_parallel():
    sim = make_sim(cores=4)
    for n in range(4):
        sim.spawn(compute_worker(msec(10)), name=f"w{n}")
    sim.run()
    assert sim.now == msec(10)


def test_single_core_serializes():
    sim = make_sim(cores=1)
    for n in range(3):
        sim.spawn(compute_worker(msec(5)), name=f"w{n}")
    sim.run()
    assert sim.now == msec(15)


def test_priority_order_wins_the_core():
    # With one core, the high-priority (lower number) task finishes first
    # even though it was spawned last.
    sim = make_sim(cores=1, quantum_ns=msec(1))
    finish_order = []

    def tracked(name, ns):
        yield Compute(ns)
        finish_order.append(name)

    sim.spawn(tracked("low", msec(5)), name="low", priority=200)
    sim.spawn(tracked("high", msec(5)), name="high", priority=10)
    sim.run()
    assert finish_order == ["high", "low"]


def test_priority_change_takes_effect_within_a_quantum():
    sim = make_sim(cores=1, quantum_ns=msec(1))
    finish_order = []

    def tracked(name, ns):
        yield Compute(ns)
        finish_order.append(name)

    background = sim.spawn(tracked("bg", msec(10)), name="bg", priority=100)
    sim.spawn(tracked("boosted", msec(3)), name="boosted", priority=100)
    # After 1 ms, demote the background task; the other should then finish first.
    sim.call_after(msec(1), lambda: setattr(background, "priority", 500))
    sim.run()
    assert finish_order == ["boosted", "bg"]


def test_switch_cost_is_charged_per_dispatch():
    sim = Simulator(cores=1, quantum_ns=msec(1), switch_cost_ns=1000)
    sim.spawn(compute_worker(msec(3)), name="w")
    sim.run()
    # 3 quanta, each with 1000 ns of dispatch overhead.
    assert sim.now == msec(3) + 3 * 1000
    assert sim.cpu.stats.switch_ns == 3 * 1000


def test_cpu_time_accounting_per_process():
    sim = make_sim(cores=2)
    p1 = sim.spawn(compute_worker(msec(7)), name="p1")
    p2 = sim.spawn(compute_worker(msec(3)), name="p2")
    sim.run()
    assert p1.cpu_time_ns == msec(7)
    assert p2.cpu_time_ns == msec(3)
    assert sim.cpu.stats.busy_ns == msec(10)


def test_utilization_reflects_busy_fraction():
    sim = make_sim(cores=2)
    sim.spawn(compute_worker(msec(10)), name="only")
    sim.run()
    # One of two cores busy for the whole run: 50% utilization.
    assert sim.cpu.stats.utilization(2, sim.now) == pytest.approx(0.5)


def test_utilization_zero_elapsed_is_zero():
    sim = make_sim(cores=2)
    assert sim.cpu.stats.utilization(2, 0) == 0.0


def test_peak_runnable_tracks_queue_depth():
    sim = make_sim(cores=1)
    for n in range(5):
        sim.spawn(compute_worker(msec(1)), name=f"w{n}")
    sim.run()
    assert sim.cpu.stats.peak_runnable >= 4


def test_cpu_rejects_invalid_configuration():
    sim = Simulator()
    with pytest.raises(SimulationError):
        CPU(sim, cores=0)
    with pytest.raises(SimulationError):
        CPU(sim, cores=1, quantum_ns=0)
    with pytest.raises(SimulationError):
        CPU(sim, cores=1, switch_cost_ns=-1)


def test_fifo_within_same_priority():
    sim = make_sim(cores=1, quantum_ns=msec(100))  # no slicing
    finish_order = []

    def tracked(name):
        yield Compute(msec(1))
        finish_order.append(name)

    for name in ["first", "second", "third"]:
        sim.spawn(tracked(name), name=name)
    sim.run()
    assert finish_order == ["first", "second", "third"]
