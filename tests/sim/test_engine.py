"""Tests for the simulation engine: process lifecycle, requests, determinism."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.quantities import msec
from repro.sim import Compute, Simulator, Timeout, Wait


def test_timeout_advances_time_without_cpu():
    sim = Simulator(cores=1)

    def sleeper():
        yield Timeout(msec(10))

    sim.spawn(sleeper(), name="sleeper")
    sim.run()
    assert sim.now == msec(10)
    assert sim.cpu.stats.busy_ns == 0


def test_compute_uses_cpu_time():
    sim = Simulator(cores=1, switch_cost_ns=0)

    def worker():
        yield Compute(msec(3))

    process = sim.spawn(worker(), name="worker")
    sim.run()
    assert sim.now == msec(3)
    assert process.cpu_time_ns == msec(3)


def test_process_result_propagates():
    sim = Simulator()

    def producer():
        yield Timeout(1)
        return "value"

    process = sim.spawn(producer(), name="producer")
    sim.run()
    assert process.result == "value"
    assert not process.alive


def test_zero_compute_resumes_immediately():
    sim = Simulator(cores=1, switch_cost_ns=0)

    def worker():
        yield Compute(0)
        return "done"

    process = sim.spawn(worker(), name="worker")
    sim.run()
    assert sim.now == 0
    assert process.result == "done"


def test_wait_on_done_joins_processes():
    sim = Simulator()
    order = []

    def child():
        yield Timeout(msec(5))
        order.append("child")
        return 7

    def parent(child_process):
        value = yield Wait(child_process.done)
        order.append("parent")
        return value

    child_process = sim.spawn(child(), name="child")
    parent_process = sim.spawn(parent(child_process), name="parent")
    sim.run()
    assert order == ["child", "parent"]
    assert parent_process.result == 7


def test_wait_on_already_fired_completion_resumes():
    sim = Simulator()
    completion = sim.completion("early")

    def late_waiter():
        yield Timeout(msec(1))
        value = yield Wait(completion)
        return value

    completion.fire("payload")
    process = sim.spawn(late_waiter(), name="late")
    sim.run()
    assert process.result == "payload"


def test_process_exception_surfaces_in_run():
    sim = Simulator()

    def broken():
        yield Timeout(1)
        raise ValueError("model bug")

    sim.spawn(broken(), name="broken")
    with pytest.raises(ValueError, match="model bug"):
        sim.run()


def test_unknown_request_is_rejected():
    sim = Simulator()

    def confused():
        yield "not a request"

    sim.spawn(confused(), name="confused")
    with pytest.raises(SimulationError, match="unknown request"):
        sim.run()


def test_run_until_stops_early():
    sim = Simulator()

    def sleeper():
        yield Timeout(msec(100))

    process = sim.spawn(sleeper(), name="sleeper")
    stopped_at = sim.run(until_ns=msec(10))
    assert stopped_at == msec(10)
    assert process.alive
    sim.run()
    assert not process.alive


def test_deadlock_detection_reports_blocked_processes():
    sim = Simulator()

    def stuck():
        yield Wait(sim.completion("never"))

    sim.spawn(stuck(), name="stuck-process")
    with pytest.raises(DeadlockError, match="stuck-process"):
        sim.run(check_deadlock=True)


def test_daemon_does_not_trip_deadlock_detection():
    sim = Simulator()

    def daemon():
        yield Wait(sim.completion("never"))

    sim.spawn(daemon(), name="daemon", daemon=True)
    sim.run(check_deadlock=True)  # must not raise


def test_call_after_runs_plain_callback():
    sim = Simulator()
    fired = []
    sim.call_after(msec(2), lambda: fired.append(sim.now))
    sim.run()
    assert fired == [msec(2)]


def test_call_at_in_past_rejected():
    sim = Simulator()
    sim.call_after(msec(2), lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(msec(1), lambda: None)


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1)


def test_negative_compute_rejected():
    with pytest.raises(SimulationError):
        Compute(-5)


def test_identical_runs_are_bit_for_bit_deterministic():
    def build_and_run():
        sim = Simulator(cores=2)
        log = []

        def worker(n):
            yield Compute(msec(2 + n))
            log.append((sim.now, n))
            yield Timeout(msec(n))
            log.append((sim.now, n))

        for n in range(6):
            sim.spawn(worker(n), name=f"w{n}")
        sim.run()
        return sim.now, tuple(log)

    assert build_and_run() == build_and_run()


def test_yield_from_composes_subactivities():
    sim = Simulator(cores=1, switch_cost_ns=0)

    def sub():
        yield Compute(msec(1))
        return 10

    def main():
        a = yield from sub()
        b = yield from sub()
        return a + b

    process = sim.spawn(main(), name="main")
    sim.run()
    assert process.result == 20
    assert sim.now == msec(2)
