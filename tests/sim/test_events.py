"""Tests for the deterministic event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(30, lambda: order.append("c"))
    queue.push(10, lambda: order.append("a"))
    queue.push(20, lambda: order.append("b"))
    while len(queue) > 0:
        queue.pop().callback()
    assert order == ["a", "b", "c"]


def test_same_time_events_pop_fifo():
    queue = EventQueue()
    order = []
    for label in "abcde":
        queue.push(5, lambda l=label: order.append(l))
    while len(queue) > 0:
        queue.pop().callback()
    assert order == list("abcde")


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_negative_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(-1, lambda: None)


def test_len_counts_live_events():
    queue = EventQueue()
    first = queue.push(1, lambda: None)
    queue.push(2, lambda: None)
    assert len(queue) == 2
    queue.cancel(first)
    assert len(queue) == 1


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    ran = []
    victim = queue.push(1, lambda: ran.append("victim"))
    queue.push(2, lambda: ran.append("survivor"))
    queue.cancel(victim)
    assert queue.pop().time_ns == 2
    assert len(queue) == 0


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1, lambda: None)
    queue.push(2, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1, lambda: None)
    queue.push(7, lambda: None)
    queue.cancel(early)
    assert queue.peek_time() == 7


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_push_with_args_fires_callback_with_them():
    queue = EventQueue()
    seen = []
    queue.push(1, seen.append, "payload")
    queue.pop().fire()
    assert seen == ["payload"]


def test_fire_without_args_matches_direct_call():
    queue = EventQueue()
    ran = []
    queue.push(1, lambda: ran.append("x"))
    event = queue.pop()
    event.callback(*event.args)
    assert ran == ["x"]


def test_same_time_fifo_with_args():
    queue = EventQueue()
    order = []
    for label in "abcde":
        queue.push(5, order.append, label)
    while len(queue) > 0:
        queue.pop().fire()
    assert order == list("abcde")
