"""Tests for process interruption: delivery points, lock safety."""

import pytest

from repro.quantities import msec
from repro.sim import (Compute, Interrupted, Mutex, Semaphore, Simulator,
                       SpinLock, Timeout, Wait)
from repro.sim.sync import PriorityMutex


def test_interrupt_during_timeout_is_immediate():
    sim = Simulator()
    caught = []

    def sleeper():
        try:
            yield Timeout(msec(100))
        except Interrupted:
            caught.append(sim.now)

    process = sim.spawn(sleeper(), name="sleeper")
    sim.call_after(msec(10), lambda: sim.interrupt(process))
    sim.run()
    assert caught == [msec(10)]
    assert not process.alive


def test_interrupt_during_wait_removes_waiter():
    sim = Simulator()
    gate = sim.completion("never")
    caught = []

    def waiter():
        try:
            yield Wait(gate)
        except Interrupted:
            caught.append(True)

    process = sim.spawn(waiter(), name="waiter")
    sim.call_after(msec(5), lambda: sim.interrupt(process))
    sim.run()
    assert caught == [True]
    assert gate._waiters == []


def test_interrupt_during_compute_lands_at_slice_boundary():
    sim = Simulator(cores=1, quantum_ns=msec(1), switch_cost_ns=0)
    caught_at = []

    def cruncher():
        try:
            yield Compute(msec(100))
        except Interrupted:
            caught_at.append(sim.now)

    process = sim.spawn(cruncher(), name="cruncher")
    sim.call_after(msec(10), lambda: sim.interrupt(process))
    sim.run()
    # Delivered at the end of the slice running at t=10ms: within 1 quantum.
    assert caught_at and msec(10) <= caught_at[0] <= msec(11)
    # The remaining 90 ms of work was abandoned.
    assert sim.now < msec(15)


def test_uncaught_interrupt_ends_process_quietly():
    sim = Simulator()

    def oblivious():
        yield Timeout(msec(100))
        return "never reached"

    process = sim.spawn(oblivious(), name="oblivious")
    sim.call_after(msec(1), lambda: sim.interrupt(process))
    sim.run()  # must not raise
    assert not process.alive
    assert process.result is None
    assert process.done.fired


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(1)

    process = sim.spawn(quick(), name="quick")
    sim.run()
    sim.interrupt(process)  # no effect, no error
    sim.run()


def test_finally_releases_mutex_on_interrupt():
    sim = Simulator(cores=2, switch_cost_ns=0)
    mutex = Mutex(sim, wake_cost_ns=0)
    second_got_lock = []

    def holder():
        yield from mutex.acquire()
        try:
            yield Timeout(msec(100))
        finally:
            mutex.release()

    def contender():
        yield Timeout(msec(1))
        yield from mutex.acquire()
        second_got_lock.append(sim.now)
        mutex.release()

    holder_process = sim.spawn(holder(), name="holder")
    sim.spawn(contender(), name="contender")
    sim.call_after(msec(10), lambda: sim.interrupt(holder_process))
    sim.run()
    assert second_got_lock and second_got_lock[0] <= msec(11)


def test_interrupted_mutex_waiter_does_not_wedge_queue():
    sim = Simulator(cores=4, switch_cost_ns=0)
    mutex = Mutex(sim, wake_cost_ns=0)
    order = []

    def worker(name, delay):
        yield Timeout(delay)
        yield from mutex.acquire()
        order.append(name)
        yield Timeout(msec(10))
        mutex.release()

    sim.spawn(worker("first", 0), name="first")
    victim = sim.spawn(worker("victim", 1), name="victim")
    sim.spawn(worker("third", 2), name="third")
    sim.call_after(msec(5), lambda: sim.interrupt(victim))
    sim.run()
    assert order == ["first", "third"]


def test_interrupted_priority_mutex_waiter_skipped():
    sim = Simulator(cores=4, switch_cost_ns=0)
    lock = PriorityMutex(sim, wake_cost_ns=0)
    order = []

    def worker(name, delay):
        yield Timeout(delay)
        yield from lock.acquire()
        order.append(name)
        yield Timeout(msec(10))
        lock.release()

    sim.spawn(worker("first", 0), name="first")
    victim = sim.spawn(worker("victim", 1), name="victim", priority=1)
    sim.spawn(worker("third", 2), name="third")
    sim.call_after(msec(5), lambda: sim.interrupt(victim))
    sim.run()
    assert order == ["first", "third"]


def test_interrupted_spinlock_waiter_does_not_wedge_tickets():
    sim = Simulator(cores=4, switch_cost_ns=0)
    lock = SpinLock(sim, acquire_cost_ns=0, spin_slice_ns=msec(1))
    order = []

    def worker(name, delay):
        yield Timeout(delay)
        yield from lock.acquire()
        order.append(name)
        yield Timeout(msec(10))
        lock.release()

    sim.spawn(worker("first", 0), name="first")
    victim = sim.spawn(worker("victim", 1), name="victim")
    sim.spawn(worker("third", 2), name="third")
    sim.call_after(msec(5), lambda: sim.interrupt(victim))
    sim.run()
    assert order == ["first", "third"]


def test_interrupted_semaphore_waiter_does_not_lose_permit():
    sim = Simulator(cores=4, switch_cost_ns=0)
    sem = Semaphore(sim, count=1)
    acquired = []

    def worker(name, delay):
        yield Timeout(delay)
        yield from sem.acquire()
        acquired.append(name)
        yield Timeout(msec(10))
        sem.release()

    sim.spawn(worker("first", 0), name="first")
    victim = sim.spawn(worker("victim", 1), name="victim")
    sim.spawn(worker("third", 2), name="third")
    sim.call_after(msec(5), lambda: sim.interrupt(victim))
    sim.run()
    assert acquired == ["first", "third"]
    assert sem.count == 1


def test_catch_and_continue_after_interrupt():
    """A process may catch the interrupt and keep running."""
    sim = Simulator()
    phases = []

    def resilient():
        try:
            yield Timeout(msec(100))
        except Interrupted:
            phases.append("interrupted")
        yield Timeout(msec(5))
        phases.append("recovered")
        return "done"

    process = sim.spawn(resilient(), name="resilient")
    sim.call_after(msec(10), lambda: sim.interrupt(process))
    sim.run()
    assert phases == ["interrupted", "recovered"]
    assert process.result == "done"
    assert sim.now == msec(15)
