"""Tests for sync primitives — especially the spin-vs-sleep core behaviour
that underlies the paper's RCU Booster result."""

import pytest

from repro.errors import SimulationError
from repro.quantities import msec
from repro.sim import Completion, Compute, Mutex, Semaphore, Simulator, SpinLock, Timeout, Wait
from repro.sim.sync import PriorityMutex, wait_all


# ---------------------------------------------------------------- Completion

def test_completion_wakes_all_waiters_with_value():
    sim = Simulator()
    completion = sim.completion("gate")
    results = []

    def waiter(n):
        value = yield Wait(completion)
        results.append((n, value))

    for n in range(3):
        sim.spawn(waiter(n), name=f"waiter{n}")
    sim.call_after(msec(5), lambda: completion.fire("go"))
    sim.run()
    assert results == [(0, "go"), (1, "go"), (2, "go")]


def test_completion_double_fire_rejected():
    sim = Simulator()
    completion = sim.completion()
    completion.fire()
    with pytest.raises(SimulationError):
        completion.fire()


def test_completion_wait_helper_returns_value():
    sim = Simulator()
    completion = sim.completion()

    def waiter():
        value = yield from completion.wait()
        return value

    process = sim.spawn(waiter(), name="w")
    sim.call_after(1, lambda: completion.fire(123))
    sim.run()
    assert process.result == 123


def test_wait_all_waits_for_every_completion():
    sim = Simulator()
    gates = [sim.completion(f"g{n}") for n in range(3)]
    done_at = []

    def waiter():
        yield from wait_all(sim, gates)
        done_at.append(sim.now)

    sim.spawn(waiter(), name="w")
    sim.call_after(msec(1), lambda: gates[2].fire())
    sim.call_after(msec(3), lambda: gates[0].fire())
    sim.call_after(msec(2), lambda: gates[1].fire())
    sim.run()
    assert done_at == [msec(3)]


# --------------------------------------------------------------------- Mutex

def test_mutex_serializes_critical_sections():
    sim = Simulator(cores=4, switch_cost_ns=0)
    mutex = Mutex(sim, wake_cost_ns=0)
    in_section = [0]
    max_in_section = [0]

    def worker():
        yield from mutex.acquire()
        in_section[0] += 1
        max_in_section[0] = max(max_in_section[0], in_section[0])
        yield Timeout(msec(2))
        in_section[0] -= 1
        mutex.release()

    for n in range(5):
        sim.spawn(worker(), name=f"w{n}")
    sim.run()
    assert max_in_section[0] == 1
    assert sim.now == msec(10)


def test_mutex_waiters_do_not_burn_cpu():
    # 4 cores, 1 holder sleeping 10 ms, 3 waiters: CPU stays idle while
    # they sleep on the mutex.
    sim = Simulator(cores=4, switch_cost_ns=0)
    mutex = Mutex(sim, wake_cost_ns=0)

    def worker():
        yield from mutex.acquire()
        yield Timeout(msec(10))
        mutex.release()

    for n in range(4):
        sim.spawn(worker(), name=f"w{n}")
    sim.run()
    assert sim.cpu.stats.busy_ns == 0


def test_mutex_is_fifo():
    sim = Simulator(cores=4, switch_cost_ns=0)
    mutex = Mutex(sim, wake_cost_ns=0)
    order = []

    def worker(n):
        yield Timeout(n)  # stagger arrival: 0, 1, 2, ...
        yield from mutex.acquire()
        order.append(n)
        yield Timeout(msec(1))
        mutex.release()

    for n in range(4):
        sim.spawn(worker(n), name=f"w{n}")
    sim.run()
    assert order == [0, 1, 2, 3]


def test_mutex_wake_cost_is_charged_to_waiter():
    sim = Simulator(cores=1, switch_cost_ns=0)
    mutex = Mutex(sim, wake_cost_ns=5_000)

    def holder():
        yield from mutex.acquire()
        yield Timeout(msec(1))
        mutex.release()

    def waiter():
        yield from mutex.acquire()
        mutex.release()

    sim.spawn(holder(), name="holder")
    waiter_process = sim.spawn(waiter(), name="waiter")
    sim.run()
    assert waiter_process.cpu_time_ns == 5_000
    assert mutex.contended_acquires == 1
    assert mutex.total_acquires == 2


def test_mutex_release_unlocked_rejected():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(SimulationError):
        mutex.release()


def test_mutex_acquire_outside_process_rejected():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(SimulationError):
        # Drive the generator by hand outside any process context.
        list(mutex.acquire())


# ------------------------------------------------------------------ SpinLock

def test_spinlock_serializes():
    sim = Simulator(cores=4, switch_cost_ns=0)
    lock = SpinLock(sim, acquire_cost_ns=0)
    concurrent = [0]
    worst = [0]

    def worker():
        yield from lock.acquire()
        concurrent[0] += 1
        worst[0] = max(worst[0], concurrent[0])
        yield Timeout(msec(1))
        concurrent[0] -= 1
        lock.release()

    for n in range(4):
        sim.spawn(worker(), name=f"w{n}")
    sim.run()
    assert worst[0] == 1


def test_spinlock_waiters_burn_cpu_while_mutex_waiters_sleep():
    """The core claim behind RCU Booster, as a property of the primitives:
    under contention, spin waiters consume core time that mutex waiters
    leave free for other work."""

    def run(lock_kind):
        sim = Simulator(cores=4, switch_cost_ns=0)
        if lock_kind == "spin":
            lock = SpinLock(sim, acquire_cost_ns=0, spin_slice_ns=50_000)
        else:
            lock = Mutex(sim, wake_cost_ns=0)

        def worker():
            yield from lock.acquire()
            yield Timeout(msec(5))  # critical section is a pure wait
            lock.release()

        for n in range(4):
            sim.spawn(worker(), name=f"w{n}")
        sim.run()
        return sim.cpu.stats.busy_ns

    spin_busy = run("spin")
    mutex_busy = run("mutex")
    assert mutex_busy == 0
    # Three waiters spin for ~5/10/15 ms: the burn is macroscopic.
    assert spin_busy >= msec(25)


def test_spinlock_burn_delays_other_runnable_work():
    """On a single core, a spinning waiter starves an innocent task;
    a sleeping waiter does not."""

    def innocent_finish_time(lock_kind):
        sim = Simulator(cores=1, switch_cost_ns=0, quantum_ns=msec(1))
        if lock_kind == "spin":
            lock = SpinLock(sim, acquire_cost_ns=0, spin_slice_ns=msec(1))
        else:
            lock = Mutex(sim, wake_cost_ns=0)
        finish = {}

        def holder():
            yield from lock.acquire()
            yield Timeout(msec(20))
            lock.release()

        def contender():
            yield Timeout(1)
            yield from lock.acquire()
            lock.release()

        def innocent():
            yield Timeout(2)
            yield Compute(msec(10))
            finish["innocent"] = sim.now

        sim.spawn(holder(), name="holder")
        sim.spawn(contender(), name="contender")
        sim.spawn(innocent(), name="innocent")
        sim.run()
        return finish["innocent"]

    fast = innocent_finish_time("mutex")
    slow = innocent_finish_time("spin")
    # Under the mutex the innocent task has the core to itself (~10 ms);
    # under the spinlock it time-shares with the spinner (~19-20 ms).
    assert fast < slow
    assert slow >= msec(18)


def test_spinlock_is_fifo_by_ticket():
    sim = Simulator(cores=8, switch_cost_ns=0)
    lock = SpinLock(sim, acquire_cost_ns=0, spin_slice_ns=10_000)
    order = []

    def worker(n):
        yield Timeout(n)
        yield from lock.acquire()
        order.append(n)
        yield Timeout(msec(1))
        lock.release()

    for n in range(4):
        sim.spawn(worker(n), name=f"w{n}")
    sim.run()
    assert order == [0, 1, 2, 3]


def test_spinlock_try_acquire():
    sim = Simulator()
    lock = SpinLock(sim)
    assert lock.try_acquire()
    assert not lock.try_acquire()
    lock.release()
    assert lock.try_acquire()


def test_spinlock_release_unlocked_rejected():
    sim = Simulator()
    lock = SpinLock(sim)
    with pytest.raises(SimulationError):
        lock.release()


def test_spinlock_invalid_slice_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        SpinLock(sim, spin_slice_ns=0)


# ------------------------------------------------------------- PriorityMutex

def test_priority_mutex_serves_highest_priority_waiter_first():
    sim = Simulator(cores=8, switch_cost_ns=0)
    lock = PriorityMutex(sim, wake_cost_ns=0)
    order = []

    def worker(name, priority_delay):
        yield Timeout(priority_delay)
        yield from lock.acquire()
        order.append(name)
        yield Timeout(msec(5))
        lock.release()

    # Holder takes the lock at t=0; low/high queue behind it.
    sim.spawn(worker("holder", 0), name="holder", priority=100)
    sim.spawn(worker("low", 1), name="low", priority=200)
    sim.spawn(worker("high", 2), name="high", priority=10)
    sim.run()
    assert order == ["holder", "high", "low"]


def test_priority_mutex_fifo_within_priority():
    sim = Simulator(cores=8, switch_cost_ns=0)
    lock = PriorityMutex(sim, wake_cost_ns=0)
    order = []

    def worker(n):
        yield Timeout(n)
        yield from lock.acquire()
        order.append(n)
        yield Timeout(msec(1))
        lock.release()

    for n in range(4):
        sim.spawn(worker(n), name=f"w{n}", priority=100)
    sim.run()
    assert order == [0, 1, 2, 3]


def test_priority_mutex_samples_priority_at_release():
    """A boost applied while waiting still wins the next grant."""
    sim = Simulator(cores=8, switch_cost_ns=0)
    lock = PriorityMutex(sim, wake_cost_ns=0)
    order = []

    def holder():
        yield from lock.acquire()
        yield Timeout(msec(10))
        lock.release()

    def waiter(name):
        yield Timeout(1)
        yield from lock.acquire()
        order.append(name)
        lock.release()

    sim.spawn(holder(), name="holder")
    sim.spawn(waiter("first"), name="first", priority=100)
    late = sim.spawn(waiter("second"), name="second", priority=100)
    # Boost the second waiter while it is queued.
    sim.call_after(msec(5), lambda: setattr(late, "priority", 1))
    sim.run()
    assert order == ["second", "first"]


def test_priority_mutex_release_unlocked_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PriorityMutex(sim).release()


def test_priority_mutex_acquire_outside_process_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        list(PriorityMutex(sim).acquire())


# ----------------------------------------------------------------- Semaphore

def test_semaphore_limits_concurrency():
    sim = Simulator(cores=8, switch_cost_ns=0)
    sem = Semaphore(sim, count=2)
    concurrent = [0]
    worst = [0]

    def worker():
        yield from sem.acquire()
        concurrent[0] += 1
        worst[0] = max(worst[0], concurrent[0])
        yield Timeout(msec(1))
        concurrent[0] -= 1
        sem.release()

    for n in range(6):
        sim.spawn(worker(), name=f"w{n}")
    sim.run()
    assert worst[0] == 2
    assert sim.now == msec(3)


def test_semaphore_negative_count_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Semaphore(sim, count=-1)


def test_semaphore_release_without_waiters_increments():
    sim = Simulator()
    sem = Semaphore(sim, count=0)
    sem.release()
    assert sem.count == 1
