"""Regression pins for event-heap tie-break determinism.

The event queue orders same-timestamp events FIFO via the ``(time_ns,
seq)`` heap key.  That tie-break is what makes every boot bit-for-bit
reproducible — across repeated runs, across OS processes (no
``PYTHONHASHSEED`` leakage), and across ``SweepRunner --jobs`` fan-out.
These tests pin each of those properties so a future heap-key change
that silently reorders same-time events fails here, not in a flaky
downstream experiment.
"""

import os
import subprocess
import sys

import pytest

from repro.analysis.export import report_to_json
from repro.core import BBConfig, BootSimulation
from repro.runner import ResultCache, SweepRunner
from repro.runner.jobs import SimJob
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.sim.process import Compute, Timeout
from repro.workloads import opensource_tv_workload
from repro.workloads.generator import GeneratorParams, generate_workload

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def test_equal_time_events_pop_fifo():
    queue = EventQueue()
    order = []
    for tag in range(8):
        queue.push(1_000, order.append, tag)
    while queue:
        event = queue.pop()
        event.callback(*event.args)
    assert order == list(range(8))


def test_fifo_survives_interleaved_push_pop():
    queue = EventQueue()
    order = []
    queue.push(10, order.append, "a")
    queue.push(10, order.append, "b")
    first = queue.pop()
    first.callback(*first.args)
    queue.push(10, order.append, "c")
    while queue:
        event = queue.pop()
        event.callback(*event.args)
    assert order == ["a", "b", "c"]


def test_same_process_boots_export_identical_json():
    def boot_json():
        return report_to_json(
            BootSimulation(opensource_tv_workload(), BBConfig.full()).run())

    assert boot_json() == boot_json()


def test_engine_run_is_repeatable_at_event_level():
    def run_once():
        sim = Simulator(cores=2)
        trace = []

        def worker(tag, compute_ns):
            yield Timeout(100)
            yield Compute(compute_ns)
            trace.append((tag, sim.now))

        for tag in range(6):
            sim.spawn(worker(tag, 1_000 * (tag % 3 + 1)), name=f"w{tag}")
        sim.run()
        return tuple(trace)

    assert run_once() == run_once()


@pytest.mark.slow
def test_boot_json_identical_across_processes():
    """Two fresh interpreters with different hash seeds agree byte-for-byte."""
    def boot_in_subprocess(hash_seed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "boot", "--workload", "tv",
             "--json"],
            capture_output=True, text=True, env=env, check=True, timeout=120)
        return result.stdout

    first = boot_in_subprocess("1")
    second = boot_in_subprocess("31337")
    assert first == second
    assert '"boot_complete_ns"' in first


def _tiebreak_sample_jobs():
    jobs = [SimJob.boot(generate_workload,
                        GeneratorParams(seed=seed, services=10),
                        bb=BBConfig.full(), label=f"gen{seed}")
            for seed in range(4)]
    jobs.append(SimJob.boot(opensource_tv_workload, bb=BBConfig.none(),
                            label="tv-none"))
    return jobs


@pytest.mark.slow
def test_sweep_results_identical_across_jobs_counts():
    """--jobs 1 and --jobs 2 must export byte-identical reports: worker
    fan-out changes wall-clock interleaving but never simulated order."""
    exports = []
    for jobs in (1, 2):
        with SweepRunner(jobs=jobs, cache=ResultCache()) as runner:
            results = runner.run(_tiebreak_sample_jobs())
        exports.append([report_to_json(report) for report in results])
    assert exports[0] == exports[1]
