"""Tests for the span tracer."""

import pytest

from repro.errors import SimulationError
from repro.quantities import msec
from repro.sim import Simulator, Timeout


def test_span_records_start_and_end():
    sim = Simulator()

    def activity():
        span = sim.tracer.begin("dbus.service", "service")
        yield Timeout(msec(7))
        sim.tracer.end(span)

    sim.spawn(activity(), name="a")
    sim.run()
    span = sim.tracer.find("dbus.service")
    assert span.start_ns == 0
    assert span.end_ns == msec(7)
    assert span.duration_ns == msec(7)


def test_span_attrs_are_kept():
    sim = Simulator()
    span = sim.tracer.begin("x", "service", deferred=True)
    assert span.attrs == {"deferred": True}


def test_open_span_duration_raises():
    sim = Simulator()
    span = sim.tracer.begin("x", "service")
    with pytest.raises(SimulationError):
        _ = span.duration_ns
    assert not span.closed


def test_double_end_rejected():
    sim = Simulator()
    span = sim.tracer.begin("x", "service")
    sim.tracer.end(span)
    with pytest.raises(SimulationError):
        sim.tracer.end(span)


def test_instant_records_current_time():
    sim = Simulator()
    sim.call_after(msec(3), lambda: sim.tracer.instant("boot.complete"))
    sim.run()
    assert sim.tracer.find_instant("boot.complete").time_ns == msec(3)


def test_find_missing_raises_keyerror():
    sim = Simulator()
    with pytest.raises(KeyError):
        sim.tracer.find("nope")
    with pytest.raises(KeyError):
        sim.tracer.find_instant("nope")


def test_spans_in_filters_by_category():
    sim = Simulator()
    sim.tracer.begin("a", "service")
    sim.tracer.begin("b", "kernel")
    sim.tracer.begin("c", "service")
    names = [s.name for s in sim.tracer.spans_in("service")]
    assert names == ["a", "c"]


def test_iter_closed_excludes_open_spans():
    sim = Simulator()
    closed = sim.tracer.begin("closed", "x")
    sim.tracer.end(closed)
    sim.tracer.begin("open", "x")
    assert [s.name for s in sim.tracer.iter_closed()] == ["closed"]
