"""Tests for the release artifact generator script."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_generate_artifacts_skip_slow(tmp_path):
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "generate_artifacts.py"),
         "--out", str(tmp_path), "--skip-slow"],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    expected = {"bootchart_no_bb.svg", "bootchart_bb.svg",
                "fig7_conventional.svg", "fig7_isolated.svg",
                "dependency_graph.dot", "report_no_bb.json", "report_bb.json",
                "experiments.txt"}
    assert expected <= {p.name for p in tmp_path.iterdir()}
    report = json.loads((tmp_path / "report_bb.json").read_text())
    assert report["boot_complete_ns"] > 0
    assert (tmp_path / "bootchart_bb.svg").read_text().startswith("<svg")
    assert "digraph" in (tmp_path / "dependency_graph.dot").read_text()
    experiments = (tmp_path / "experiments.txt").read_text()
    assert "fig7" in experiments
    assert "ablations" not in experiments  # skipped as slow
