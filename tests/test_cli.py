"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    output = capsys.readouterr().out
    return code, output


def test_workloads_command_lists_all(capsys):
    code, output = run_cli(capsys, "workloads")
    assert code == 0
    for name in WORKLOADS:
        assert name in output


def test_boot_default_is_full_bb(capsys):
    code, output = run_cli(capsys, "boot", "--workload", "camera")
    assert code == 0
    assert "BB Group" in output
    assert "boot completion" in output


def test_boot_no_bb(capsys):
    code, output = run_cli(capsys, "boot", "--workload", "camera", "--no-bb")
    assert code == 0
    assert "none (conventional boot)" in output


def test_boot_feature_list(capsys):
    code, output = run_cli(capsys, "boot", "--workload", "camera",
                           "--features", "rcu_booster,preparser")
    assert code == 0
    assert "rcu_booster" in output
    assert "preparser" in output


def test_boot_unknown_workload_exits(capsys):
    with pytest.raises(SystemExit, match="unknown workload"):
        main(["boot", "--workload", "toaster"])


def test_boot_unknown_feature_raises(capsys):
    with pytest.raises(AttributeError, match="unknown BB feature"):
        main(["boot", "--workload", "camera", "--features", "warp"])


def test_experiment_list(capsys):
    code, output = run_cli(capsys, "experiment", "list")
    assert code == 0
    for exp_id in ("fig1", "fig6", "fig7", "tradeoff", "variance"):
        assert exp_id in output


def test_experiment_runs_one(capsys):
    code, output = run_cli(capsys, "experiment", "fig3")
    assert code == 0
    assert "Figure 3" in output


def test_experiment_unknown_exits(capsys):
    with pytest.raises(SystemExit, match="unknown experiment"):
        main(["experiment", "fig99"])


def test_bootchart_ascii_and_svg(tmp_path, capsys):
    svg_path = tmp_path / "chart.svg"
    code, output = run_cli(capsys, "bootchart", "--workload", "camera",
                           "--rows", "5", "--svg", str(svg_path))
    assert code == 0
    assert "#" in output
    assert svg_path.read_text().startswith("<svg")


def test_analyze_clean_workload_returns_zero(capsys):
    code, output = run_cli(capsys, "analyze", "--workload", "tv")
    assert code == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ---------------------------------------------------------------- recovery

def test_recover_preset_exits_degraded(capsys):
    code, output = run_cli(capsys, "recover", "transient-storage-burst")
    assert code == 3
    assert "restart" in output


def test_recover_unknown_preset_exits(capsys):
    with pytest.raises(SystemExit, match="unknown fault preset"):
        main(["recover", "warp-core-breach"])


def test_recover_json_is_valid_report(capsys):
    import json

    from repro.analysis.schema import validate_report_dict

    code, output = run_cli(capsys, "recover", "transient-storage-burst",
                           "--json")
    assert code == 3
    document = json.loads(output)
    validate_report_dict(document)
    assert document["recovery"]["converged"] is True


def test_recover_smoke_matrix_converges(capsys):
    code, output = run_cli(capsys, "recover", "--smoke")
    assert code == 0
    assert "every fault preset converges" in output


def test_boot_with_recover_flag_exits_degraded(capsys):
    code, output = run_cli(capsys, "boot", "--faults",
                           "transient-storage-burst", "--recover")
    assert code == 3
    assert "recovered" in output or "restart" in output


def test_boot_faulted_unsupervised_can_fail(capsys):
    code, output = run_cli(capsys, "boot", "--faults", "broken-tuner")
    assert code in (1, 3)


def test_boot_clean_still_exits_zero(capsys):
    code, _ = run_cli(capsys, "boot", "--workload", "camera")
    assert code == 0


def test_predict_matches_boot_completion(capsys):
    code, predicted = run_cli(capsys, "predict", "--workload", "camera")
    assert code == 0
    assert "predicted, no simulation" in predicted
    code, booted = run_cli(capsys, "boot", "--workload", "camera")
    assert code == 0
    completion = [line for line in predicted.splitlines()
                  if line.startswith("boot completion")]
    assert completion and completion[0].split()[-2:] == \
        [line for line in booted.splitlines()
         if line.startswith("boot completion")][0].split()[-2:]


def test_predict_json_has_per_unit_times(capsys):
    import json
    code, output = run_cli(capsys, "predict", "--workload", "camera",
                           "--no-bb", "--json")
    assert code == 0
    document = json.loads(output)
    assert document["boot_complete_ns"] > 0
    assert document["unit_ready_ns"]


def test_predict_livelock_configuration_exits_nonzero(capsys):
    code = main(["predict", "--features", "group_priority_boost",
                 "--cores", "1"])
    captured = capsys.readouterr()
    assert code == 1
    assert "livelock" in captured.err


def test_experiment_design_space_smoke(capsys):
    code, output = run_cli(capsys, "experiment", "design-space", "--smoke")
    assert code == 0
    assert "ranked analytically" in output
    assert "Design space — tv" in output


# ------------------------------------------------------------------- fleet

@pytest.mark.parametrize("argv", [
    ["experiment", "fig3", "--jobs", "0"],
    ["recover", "--smoke", "--jobs", "0"],
    ["recover", "transient-storage-burst", "--jobs", "-3"],
    ["fleet", "campaign", "--smoke", "--max-workers", "0"],
])
def test_jobs_flags_reject_non_positive_counts(argv):
    with pytest.raises(SystemExit, match=">= 1"):
        main(argv)


def test_jobs_flag_default_resolves_to_cpu_count():
    import os

    from repro.cli import _resolve_jobs

    assert _resolve_jobs(None) == (os.cpu_count() or 1)
    assert _resolve_jobs(3) == 3


def test_fleet_submit_without_service_exits_cleanly(capsys):
    # Port 1 is never listening; the CLI should fail with a clear
    # message, not a raw ConnectionRefusedError traceback.
    with pytest.raises(SystemExit, match="cannot reach a fleet service"):
        main(["fleet", "submit", "--port", "1", "--workload", "camera"])


def test_fleet_status_without_service_exits_cleanly(capsys):
    with pytest.raises(SystemExit, match="cannot reach a fleet service"):
        main(["fleet", "status", "--port", "1"])


def test_fleet_campaign_smoke_json(capsys):
    import json

    code, output = run_cli(capsys, "fleet", "campaign", "--smoke",
                           "--total-jobs", "24", "--max-workers", "1",
                           "--json")
    assert code == 0
    document = json.loads(output)
    assert document["total_jobs"] == 24
    assert document["identical"] is True


def test_fleet_campaign_floor_failure_exits_nonzero(capsys):
    # No fleet sustains 1e12 jobs/min; the floor gate must trip.
    code, output = run_cli(capsys, "fleet", "campaign", "--smoke",
                           "--total-jobs", "16", "--max-workers", "1",
                           "--throughput-floor", "1e12")
    assert code == 1
    assert "FAIL" in output
