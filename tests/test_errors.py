"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError) or obj is errors.ReproError


def test_deadlock_error_lists_blocked():
    exc = errors.DeadlockError(["a.service", "b.service"])
    assert "a.service" in str(exc)
    assert exc.blocked == ["a.service", "b.service"]


def test_unit_parse_error_location():
    exc = errors.UnitParseError("bad key", filename="x.service", lineno=7)
    assert "x.service:7" in str(exc)
    no_line = errors.UnitParseError("bad file", filename="x.service")
    assert str(no_line).startswith("x.service:")


def test_unit_not_found_error():
    exc = errors.UnitNotFoundError("ghost.service")
    assert exc.name == "ghost.service"
    assert "ghost.service" in str(exc)


def test_dependency_cycle_error_renders_cycle():
    exc = errors.DependencyCycleError(["a.service", "b.service"])
    assert "a.service -> b.service -> a.service" in str(exc)
    assert exc.cycle == ["a.service", "b.service"]


def test_service_failure_error():
    exc = errors.ServiceFailureError("fasttv.service", "tuner driver missing")
    assert exc.unit == "fasttv.service"
    assert "tuner driver missing" in str(exc)


def test_catching_the_base_class_catches_subsystem_errors():
    with pytest.raises(errors.ReproError):
        raise errors.KernelError("boom")
    with pytest.raises(errors.ReproError):
        raise errors.WorkloadError("boom")
