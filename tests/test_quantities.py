"""Tests for unit-conversion helpers."""

import pytest

from repro.quantities import (GiB, KiB, MiB, format_bytes, format_ns, msec,
                              sec, to_mib, to_msec, to_sec, transfer_time_ns,
                              usec)


def test_time_conversions_round_trip():
    assert msec(1) == 1_000_000
    assert usec(1) == 1_000
    assert sec(1) == 1_000_000_000
    assert to_msec(msec(8100)) == 8100.0
    assert to_sec(sec(3.5)) == 3.5


def test_fractional_times_round():
    assert msec(1.5) == 1_500_000
    assert msec(0.0004) == 400


def test_size_conversions():
    assert KiB(1) == 1024
    assert MiB(1) == 1024 ** 2
    assert GiB(1) == 1024 ** 3
    assert to_mib(MiB(117)) == 117.0


def test_transfer_time_exact():
    # 1 MiB at 1 MiB/s is exactly one second.
    assert transfer_time_ns(MiB(1), MiB(1)) == sec(1)


def test_transfer_time_rounds_up():
    # 1 byte at a huge rate still takes at least 1 ns.
    assert transfer_time_ns(1, 10**12) >= 1


def test_transfer_time_zero_bytes():
    assert transfer_time_ns(0, MiB(1)) == 0


def test_transfer_time_invalid_throughput():
    with pytest.raises(ValueError):
        transfer_time_ns(100, 0)


def test_format_ns_units():
    assert format_ns(sec(3.5)) == "3.500 s"
    assert format_ns(msec(461)) == "461.0 ms"
    assert format_ns(usec(1.5)) == "1.500 us"
    assert format_ns(12) == "12 ns"


def test_format_bytes_units():
    assert format_bytes(GiB(8)) == "8.00 GiB"
    assert format_bytes(MiB(10)) == "10.00 MiB"
    assert format_bytes(KiB(64)) == "64.00 KiB"
    assert format_bytes(100) == "100 B"
