"""End-to-end tests of the verification harness and its CLI surface."""

import json

import pytest

from repro.cli import main
from repro.verify import run_verification
from repro.verify.runner import CheckResult, VerificationReport


@pytest.fixture(scope="module")
def smoke_report():
    return run_verification(smoke=True, seed=0)


@pytest.mark.slow
def test_smoke_passes_with_enough_boots(smoke_report):
    assert smoke_report.ok, "\n".join(smoke_report.violations)
    # The CI acceptance bar: at least 50 perturbed/property boots.
    assert smoke_report.total_boots >= 50
    assert smoke_report.total_checks > 10_000


@pytest.mark.slow
def test_smoke_runs_every_group(smoke_report):
    names = [result.name for result in smoke_report.results]
    assert names == ["invariant-monitor", "schedule-perturbation",
                     "analytic-oracles", "predicted", "cross-cutting-laws",
                     "branch-identity", "fleet-identity",
                     "generation-identity", "fleet-crash"]
    for result in smoke_report.results:
        assert result.checks > 0, result.name


@pytest.mark.slow
def test_smoke_report_serializes(smoke_report):
    document = json.loads(json.dumps(smoke_report.to_dict()))
    assert document["ok"] is True
    assert document["total_boots"] == smoke_report.total_boots
    assert len(document["groups"]) == 9


def test_only_selects_a_single_group():
    report = run_verification(smoke=True, seed=0, only="analytic-oracles")
    assert [result.name for result in report.results] == ["analytic-oracles"]
    assert report.ok


def test_only_rejects_unknown_group_names():
    with pytest.raises(ValueError, match="unknown verification group"):
        run_verification(smoke=True, only="no-such-group")


def test_summary_renders_pass_and_fail():
    report = VerificationReport(seed=3, smoke=True)
    report.results.append(CheckResult("good", boots=2, checks=10))
    assert "PASS" in report.summary()
    report.results.append(CheckResult(
        "bad", boots=1, checks=1, violations=["something broke"]))
    text = report.summary()
    assert "FAIL" in text
    assert "something broke" in text
    assert not report.ok
    assert report.violations == ["something broke"]


@pytest.mark.slow
def test_cli_verify_smoke_exits_zero(capsys):
    assert main(["verify", "--smoke", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "schedule-perturbation" in out


@pytest.mark.slow
def test_cli_verify_json_output(capsys):
    assert main(["verify", "--smoke", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["smoke"] is True
