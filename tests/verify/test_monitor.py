"""Tests for the runtime invariant monitor.

The mutation tests are the acceptance check for the monitor itself: each
deliberately plants a scheduling/accounting bug behind the public APIs
and asserts the monitor catches it.  A monitor that stays green under
mutation is decorative; these tests keep it load-bearing.
"""

import heapq

import pytest

from repro.core import BBConfig, BootSimulation
from repro.errors import InvariantViolationError
from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import Transaction
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.process import Compute, Timeout
from repro.verify import InvariantMonitor
from repro.workloads import opensource_tv_workload


def service(name, *, stype=ServiceType.ONESHOT, cpu_ms=5, **unit_kwargs):
    return Unit(name=name, service_type=stype,
                cost=SimCost(init_cpu_ns=msec(cpu_ms), exec_bytes=0),
                **unit_kwargs)


def run_monitored_transaction(units, monitor, goal="goal.target", cores=4,
                              edge_filter=None, sabotage=None):
    sim = Simulator(cores=cores)
    monitor.attach(sim)
    storage = emmc_ue48h6200().attach(sim)
    rcu = RCUSubsystem(sim)
    txn = Transaction(UnitRegistry(units), [goal])
    paths = PathRegistry(sim)
    executor = JobExecutor(sim, txn, storage, rcu, paths,
                           edge_filter=edge_filter)
    if sabotage is not None:
        sabotage(executor)
    executor.start_all()
    sim.run()
    return sim, txn, executor


# --------------------------------------------------------------- clean runs

def test_clean_boot_has_no_violations():
    monitor = InvariantMonitor()
    report = BootSimulation(opensource_tv_workload(), BBConfig.full(),
                            monitor=monitor).run()
    assert monitor.ok
    assert report.boot_complete_ns > 0
    assert monitor.stats.events_checked > 1_000
    assert monitor.stats.cpu_checks > 0
    assert monitor.stats.job_starts_checked > 0
    assert monitor.stats.finishes == 1
    assert monitor.stats.boots == 1


def test_monitor_reattaches_across_boots():
    monitor = InvariantMonitor()
    for _ in range(2):
        BootSimulation(opensource_tv_workload(), BBConfig.none(),
                       monitor=monitor).run()
    assert monitor.ok
    assert monitor.stats.boots == 2
    assert monitor.stats.finishes == 2


def test_clean_transaction_has_no_violations():
    monitor = InvariantMonitor()
    run_monitored_transaction([
        Unit(name="goal.target", requires=["a.service", "b.service"]),
        service("a.service"),
        service("b.service", requires=["a.service"]),
    ], monitor)
    assert monitor.ok
    assert monitor.stats.job_starts_checked >= 2


def test_monitor_works_on_bare_engine():
    monitor = InvariantMonitor()
    sim = Simulator(cores=2)
    monitor.attach(sim)

    def worker():
        yield Timeout(1_000)
        yield Compute(5_000)

    for index in range(4):
        sim.spawn(worker(), name=f"w{index}")
    sim.run()
    assert monitor.ok
    assert monitor.stats.events_checked > 0


# ----------------------------------------------------------- mutation tests

class ReverseTimeQueue(EventQueue):
    """MUTANT: heap keyed by negated time — events pop newest-first."""

    def push(self, time_ns, callback, *args):
        seq = self._seq
        event = ScheduledEvent(time_ns, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (-time_ns, seq, event))
        return event


def test_monitor_catches_time_disordered_queue():
    sim = Simulator(cores=1, event_queue=ReverseTimeQueue())
    monitor = InvariantMonitor()
    monitor.attach(sim)

    def sleeper(ns):
        yield Timeout(ns)

    sim.spawn(sleeper(10_000), name="slow")
    sim.spawn(sleeper(5_000), name="fast")
    with pytest.raises(InvariantViolationError, match="time-monotonic"):
        sim.run()


def test_unmonitored_disordered_queue_fails_later_and_worse():
    """Without the monitor the same mutant still crashes, but only as a
    confusing backwards-clock error — the monitor names the real bug."""
    from repro.errors import SimulationError
    sim = Simulator(cores=1, event_queue=ReverseTimeQueue())

    def sleeper(ns):
        yield Timeout(ns)

    sim.spawn(sleeper(10_000), name="slow")
    sim.spawn(sleeper(5_000), name="fast")
    with pytest.raises(SimulationError):
        sim.run()


def test_monitor_catches_cpu_overcommit():
    """MUTANT: idle-core accounting corrupted mid-run."""
    monitor = InvariantMonitor()
    sim = Simulator(cores=2)
    monitor.attach(sim)

    def worker():
        yield Compute(10_000)

    def corrupt():
        sim.cpu._idle_cores = -1
        yield Compute(1_000)

    sim.spawn(worker(), name="worker")
    sim.spawn(corrupt(), name="saboteur")
    with pytest.raises(InvariantViolationError, match="cores-bounded"):
        sim.run()


def test_monitor_catches_silent_edge_drop():
    """MUTANT: an edge filter drops every ordering edge, and the
    executor's drop ledger is sabotaged so nothing is recorded — the
    exact failure mode of a buggy Group Isolator.  The monitor must see
    b.service start before its required predecessor settles."""

    class LeakyLedger(list):
        def append(self, edge):  # the drop is never recorded
            pass

    def sabotage(executor):
        executor.ignored_edges = LeakyLedger()

    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolationError, match="ordering-respected"):
        run_monitored_transaction([
            Unit(name="goal.target", requires=["b.service"]),
            service("b.service", requires=["a.service"], cpu_ms=1),
            service("a.service", cpu_ms=50),
        ], monitor, edge_filter=lambda edge: False, sabotage=sabotage)


def test_recorded_edge_drops_are_excused():
    """The same all-dropping filter with an honest ledger is legal: the
    Group Isolator may drop any edge as long as it says so."""
    monitor = InvariantMonitor()
    run_monitored_transaction([
        Unit(name="goal.target", requires=["b.service"]),
        service("b.service", requires=["a.service"], cpu_ms=1),
        service("a.service", cpu_ms=50),
    ], monitor, edge_filter=lambda edge: False)
    assert monitor.ok


def test_monitor_catches_deferred_work_before_completion():
    """MUTANT: a deferred process's start timestamp is rewound to before
    boot completion, as if the Deferred Executor fired early."""
    monitor = InvariantMonitor()
    simulation = BootSimulation(opensource_tv_workload(), BBConfig.full())
    simulation.run()
    deferred = simulation.manager.deferred_processes
    assert deferred, "tv/full must defer work for this mutant to bite"
    deferred[0].started_at_ns = 0
    monitor.attach(simulation.sim)
    with pytest.raises(InvariantViolationError,
                       match="deferred-after-completion"):
        monitor.finish(simulation)


# ------------------------------------------------------------- strict mode

def test_non_strict_mode_accumulates_violations():
    monitor = InvariantMonitor(strict=False)
    sim = Simulator(cores=1, event_queue=ReverseTimeQueue())
    monitor.attach(sim)

    def sleeper(ns):
        yield Timeout(ns)

    sim.spawn(sleeper(10_000), name="slow")
    sim.spawn(sleeper(5_000), name="fast")
    # Non-strict monitoring records the violation; the backwards clock
    # still crashes the engine afterwards, which is fine for a fuzzer.
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        sim.run()
    assert not monitor.ok
    assert any(v.invariant == "time-monotonic" for v in monitor.violations)
    assert "time-monotonic" in str(monitor.violations[0])
