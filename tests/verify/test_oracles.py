"""Hypothesis-driven differential oracle tests.

Each test draws random simulation inputs and checks the run against the
closed-form model in :mod:`repro.verify.oracles`.  Counts are kept small
(an example is a whole simulation); the ``repro verify`` harness runs the
same oracles at fuzzing scale.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.storage import AccessPattern
from repro.verify import oracles
from repro.workloads.generator import GeneratorParams, generate_workload

boot_scale = settings(max_examples=8)


@given(nbytes=st.integers(0, 32 * 1024 * 1024),
       seq_bps=st.integers(1_000_000, 1_000_000_000),
       rand_bps=st.integers(500_000, 500_000_000),
       latency_ns=st.integers(0, 1_000_000),
       write=st.booleans(),
       pattern=st.sampled_from(AccessPattern))
def test_storage_io_matches_closed_form(nbytes, seq_bps, rand_bps,
                                        latency_ns, write, pattern):
    assert oracles.check_storage_io(nbytes, seq_bps, rand_bps, latency_ns,
                                    write, pattern) == []


@given(tasks=st.integers(1, 16), work_ns=st.integers(1, 40) .map(lambda k: k * 250_000),
       cores=st.integers(1, 8))
def test_parallel_speedup_matches_closed_form(tasks, work_ns, cores):
    assert oracles.check_parallel_speedup(tasks, work_ns, cores) == []


@given(demands=st.lists(st.integers(1, 8_000_000), min_size=1, max_size=10),
       cores_low=st.integers(1, 4), extra=st.integers(1, 4))
def test_uncontended_cores_are_monotone(demands, cores_low, extra):
    assert oracles.check_engine_core_monotonicity(
        demands, cores_low, cores_low + extra) == []


params_strategy = st.builds(
    GeneratorParams,
    seed=st.integers(0, 10_000),
    services=st.integers(5, 16),
    chain_length=st.integers(2, 4),
    want_density=st.floats(0.0, 0.6),
    order_density=st.floats(0.0, 0.4),
)


@boot_scale
@given(params_strategy)
def test_bb_is_never_slower_on_generated_workloads(params):
    factory = lambda: generate_workload(params)
    assert oracles.check_bb_not_slower(factory) == []


@boot_scale
@given(params_strategy, st.integers(1, 3), st.integers(1, 3))
def test_boot_cores_are_monotone_within_tolerance(params, low, extra):
    factory = lambda: generate_workload(params)
    assert oracles.check_boot_core_monotonicity(factory, low, low + extra) == []


def test_expected_transfer_handles_zero_bytes():
    assert oracles.expected_transfer_ns(0, 10**9, 55) == 55


def test_oracle_detects_a_slowed_device():
    """MUTANT: the oracle must actually be able to fail.  A device whose
    fault hook stalls every request no longer matches the closed form."""
    from repro.hw.storage import StorageDevice
    from repro.sim.engine import Simulator

    sim = Simulator(cores=1)
    device = StorageDevice("mutant", seq_read_bps=10_000_000,
                           rand_read_bps=5_000_000,
                           request_latency_ns=0).attach(sim)
    device.fault_hook = lambda nbytes, is_write: 123_456

    def transfer():
        yield from device.read(1024 * 1024)

    sim.spawn(transfer(), name="io")
    sim.run()
    assert sim.now != oracles.expected_transfer_ns(1024 * 1024,
                                                   10_000_000, 0)
