"""Tests for schedule-perturbation fuzzing (the chaos tie-breaker)."""

import pytest

from repro.analysis.export import report_to_json
from repro.core import BBConfig, BootSimulation
from repro.faults import build_preset
from repro.verify import (InvariantMonitor, PerturbedEventQueue,
                          diff_signatures, metamorphic_signature)
from repro.workloads import opensource_tv_workload
from repro.workloads.generator import GeneratorParams, generate_workload


def drain(queue):
    order = []
    while queue:
        event = queue.pop()
        order.append(event.args[0])
    return order


def fill(queue):
    sink = lambda tag: None
    for tag in range(12):
        queue.push(1_000, sink, tag)  # all same time: pure tie-break
    for tag in range(12, 16):
        queue.push(2_000, sink, tag)


# ---------------------------------------------------------------- the queue

def test_same_seed_same_order():
    first, second = PerturbedEventQueue(42), PerturbedEventQueue(42)
    fill(first)
    fill(second)
    assert drain(first) == drain(second)


def test_different_seeds_permute_ties():
    orders = set()
    for seed in range(8):
        queue = PerturbedEventQueue(seed)
        fill(queue)
        orders.add(tuple(drain(queue)))
    assert len(orders) > 1, "eight seeds should produce >1 tie order"


def test_time_order_never_violated():
    queue = PerturbedEventQueue(7)
    fill(queue)
    order = drain(queue)
    # The t=2000 group (tags 12-15) must come after every t=1000 tag.
    assert all(tag < 12 for tag in order[:12])
    assert all(tag >= 12 for tag in order[12:])


def test_perturbed_queue_differs_from_fifo():
    found_difference = False
    for seed in range(16):
        queue = PerturbedEventQueue(seed)
        fill(queue)
        if drain(queue)[:12] != list(range(12)):
            found_difference = True
            break
    assert found_difference, "no seed in 16 ever deviated from FIFO"


def test_cancel_works_under_perturbation():
    queue = PerturbedEventQueue(3)
    sink = lambda tag: None
    keep = queue.push(100, sink, "keep")
    drop = queue.push(100, sink, "drop")
    queue.cancel(drop)
    assert len(queue) == 1
    assert queue.pop() is keep


# ------------------------------------------------------- metamorphic boots

@pytest.mark.slow
def test_tv_boot_signature_survives_perturbation():
    def signature(seed=None):
        queue = PerturbedEventQueue(seed) if seed is not None else None
        monitor = InvariantMonitor()
        simulation = BootSimulation(opensource_tv_workload(), BBConfig.full(),
                                    monitor=monitor, event_queue=queue)
        report = simulation.run()
        assert monitor.ok
        return metamorphic_signature(report, simulation)

    base = signature()
    for seed in (1, 2, 3):
        assert diff_signatures(base, signature(seed)) == []


@pytest.mark.slow
def test_faulted_boot_signature_survives_perturbation():
    """Same fault plan, different interleavings: identical failed set."""
    def signature(seed):
        simulation = BootSimulation(
            generate_workload(GeneratorParams(seed=13, services=12)),
            BBConfig.full(), fault_plan=build_preset("flaky-services", seed=5),
            event_queue=PerturbedEventQueue(seed))
        return metamorphic_signature(simulation.run(), simulation)

    first, second = signature(100), signature(200)
    assert diff_signatures(first, second) == []


def test_same_perturbation_seed_is_byte_identical():
    def export(seed):
        return report_to_json(BootSimulation(
            generate_workload(GeneratorParams(seed=4, services=10)),
            BBConfig.full(), event_queue=PerturbedEventQueue(seed)).run())

    assert export(9) == export(9)


def test_diff_signatures_reports_changed_keys():
    base = {"started_units": frozenset({"a"}), "rcu_sync_count": 3}
    mutated = {"started_units": frozenset({"a", "b"}), "rcu_sync_count": 3}
    differences = diff_signatures(base, mutated)
    assert len(differences) == 1
    assert "started_units" in differences[0]
