"""Tests for the wearable and appliance workloads (§4 portability)."""

import pytest

from repro.core import BBConfig, BootSimulation
from repro.experiments import portability
from repro.quantities import sec
from repro.workloads import appliance_workload, wearable_workload


def test_wearable_boots_and_bb_helps():
    plain = BootSimulation(wearable_workload(), BBConfig.none()).run()
    boosted = BootSimulation(wearable_workload(), BBConfig.full()).run()
    assert boosted.boot_complete_ns < plain.boot_complete_ns
    assert plain.boot_complete_ns == plain.ready_ns("watchface.service")


def test_appliance_boots_and_bb_helps():
    plain = BootSimulation(appliance_workload(), BBConfig.none()).run()
    boosted = BootSimulation(appliance_workload(), BBConfig.full()).run()
    assert boosted.boot_complete_ns < plain.boot_complete_ns
    # Completion needs both the control loop and the door panel.
    assert plain.boot_complete_ns == max(
        plain.ready_ns("control-loop.service"),
        plain.ready_ns("door-panel.service"))


def test_small_devices_boot_faster_than_the_tv():
    from repro.workloads import opensource_tv_workload

    tv = BootSimulation(opensource_tv_workload(), BBConfig.full()).run()
    watch = BootSimulation(wearable_workload(), BBConfig.full()).run()
    fridge = BootSimulation(appliance_workload(), BBConfig.full()).run()
    assert watch.boot_complete_ns < tv.boot_complete_ns
    assert fridge.boot_complete_ns < tv.boot_complete_ns


def test_bb_group_identified_per_device():
    watch = BootSimulation(wearable_workload(), BBConfig.full()).run()
    assert "watchface.service" in watch.bb_group
    assert "display.service" in watch.bb_group
    assert not any(name.startswith("watch-bg-") for name in watch.bb_group)

    fridge = BootSimulation(appliance_workload(), BBConfig.full()).run()
    assert {"control-loop.service", "sensors.service",
            "ipc.service"} <= fridge.bb_group


def test_portability_experiment_shape():
    result = portability.run()
    assert result.helps_everywhere
    assert len(result.rows) == 5
    text = portability.render(result)
    assert "smart TV" in text
    with pytest.raises(KeyError):
        result.reduction("toaster")


def test_workloads_are_deterministic():
    a = BootSimulation(wearable_workload(), BBConfig.none()).run()
    b = BootSimulation(wearable_workload(), BBConfig.none()).run()
    assert a.boot_complete_ns == b.boot_complete_ns
