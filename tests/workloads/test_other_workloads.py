"""Tests for camera, phone, and generated workloads."""

import pytest

from repro.core import BBConfig, BootSimulation
from repro.errors import WorkloadError
from repro.quantities import sec
from repro.workloads import (GeneratorParams, camera_workload,
                             generate_workload, phone_workload)
from repro.workloads.base import Workload
from repro.workloads.generator import generate_registry


def test_camera_boots_with_and_without_bb():
    plain = BootSimulation(camera_workload(), BBConfig.none()).run()
    boosted = BootSimulation(camera_workload(), BBConfig.full()).run()
    assert boosted.boot_complete_ns < plain.boot_complete_ns


def test_phone_boots_with_and_without_bb():
    plain = BootSimulation(phone_workload(), BBConfig.none()).run()
    boosted = BootSimulation(phone_workload(), BBConfig.full()).run()
    assert boosted.boot_complete_ns < plain.boot_complete_ns
    # Completion = telephony + home screen both ready.
    assert plain.boot_complete_ns == max(
        plain.ready_ns("telephony.service"), plain.ready_ns("home-screen.service"))


def test_camera_is_smaller_and_faster_than_tv():
    from repro.workloads import opensource_tv_workload

    camera = BootSimulation(camera_workload(), BBConfig.full()).run()
    tv = BootSimulation(opensource_tv_workload(), BBConfig.full()).run()
    assert camera.boot_complete_ns < tv.boot_complete_ns


def test_generated_registry_matches_params():
    params = GeneratorParams(seed=3, services=30, chain_length=4)
    registry = generate_registry(params)
    gen_units = [n for n in registry.names if n.startswith("gen-")]
    chain_units = [n for n in registry.names if n.startswith("chain-")]
    assert len(gen_units) == 30
    assert len(chain_units) == 4


def test_generated_workload_boots():
    workload = generate_workload(GeneratorParams(seed=5, services=20))
    report = BootSimulation(workload, BBConfig.full()).run()
    assert report.boot_complete_ns > 0
    assert report.boot_complete_ns < sec(30)


def test_generator_is_deterministic():
    params = GeneratorParams(seed=9, services=25)
    a = BootSimulation(generate_workload(params), BBConfig.none()).run()
    b = BootSimulation(generate_workload(params), BBConfig.none()).run()
    assert a.boot_complete_ns == b.boot_complete_ns


def test_generator_validates_params():
    with pytest.raises(WorkloadError):
        GeneratorParams(chain_length=0)
    with pytest.raises(WorkloadError):
        GeneratorParams(want_density=1.5)


def test_workload_validation():
    from repro.hw.presets import ue48h6200
    from repro.initsys.registry import UnitRegistry
    from repro.initsys.units import Unit

    with pytest.raises(WorkloadError, match="no completion units"):
        Workload(name="bad", platform_factory=ue48h6200,
                 registry_factory=UnitRegistry, completion_units=())

    broken = Workload(name="bad", platform_factory=ue48h6200,
                      registry_factory=lambda: UnitRegistry([Unit(name="multi-user.target")]),
                      completion_units=("ghost.service",))
    with pytest.raises(WorkloadError, match="completion unit"):
        broken.fresh_registry()

    no_goal = Workload(name="bad", platform_factory=ue48h6200,
                       registry_factory=lambda: UnitRegistry([Unit(name="a.service")]),
                       completion_units=("a.service",))
    with pytest.raises(WorkloadError, match="goal"):
        no_goal.fresh_registry()
