"""Tests for the Tizen TV workload: structure, statistics, calibration."""

import pytest

from repro.graph.visualize import figure2_stats
from repro.initsys.units import UnitType
from repro.workloads.tizen_tv import (PAPER_BB_GROUP, TV_COMPLETION_UNITS,
                                      TvWorkloadParams, build_boot_modules,
                                      build_deferred_initcalls,
                                      build_tv_registry,
                                      commercial_tv_workload,
                                      opensource_tv_workload)


def test_opensource_set_has_136_services():
    """Fig. 2: 136 services in the open-source Tizen TV OS."""
    registry = build_tv_registry()
    non_target = [u for u in registry if u.unit_type is not UnitType.TARGET]
    assert len(non_target) == 136


def test_commercial_fork_roughly_doubles():
    """§2.5: 'the number of the services has increased to more than 250
    from 136 in a few months'."""
    commercial = commercial_tv_workload().fresh_registry()
    non_target = [u for u in commercial if u.unit_type is not UnitType.TARGET]
    assert len(non_target) > 250


def test_bb_chain_requires_closure_is_papers_group():
    from repro.graph.depgraph import DependencyGraph

    registry = build_tv_registry()
    closure = DependencyGraph(registry).strong_closure(TV_COMPLETION_UNITS)
    assert closure == PAPER_BB_GROUP


def test_registry_is_deterministic():
    a, b = build_tv_registry(), build_tv_registry()
    assert a.names == b.names
    for name in a.names:
        assert a.get(name).cost == b.get(name).cost


def test_different_seeds_differ():
    a = build_tv_registry(TvWorkloadParams(seed=1))
    b = build_tv_registry(TvWorkloadParams(seed=2))
    costs_a = [a.get(n).cost.init_cpu_ns for n in a.names]
    costs_b = [b.get(n).cost.init_cpu_ns for n in b.names]
    assert costs_a != costs_b


def test_abusive_orderings_present():
    """§4.2: about a dozen services order themselves before var.mount."""
    registry = build_tv_registry()
    before_var = [u.name for u in registry if "var.mount" in u.before]
    assert len(before_var) == 12


def test_boot_modules_include_named_drivers():
    modules = build_boot_modules()
    names = {m.name for m in modules}
    assert {"tuner_drv", "demux_drv", "hdmi_drv", "av_drv"} <= names
    assert len(modules) == TvWorkloadParams().boot_module_count


def test_tiny_module_lists_still_carry_named_drivers():
    modules = build_boot_modules(TvWorkloadParams(boot_module_count=10))
    names = {m.name for m in modules}
    assert {"tuner_drv", "demux_drv", "hdmi_drv", "av_drv"} <= names


def test_deferred_initcalls_mirror_modules():
    initcalls = build_deferred_initcalls()
    assert len(initcalls) >= TvWorkloadParams().boot_module_count
    assert "usb_drv" in [c.name for c in initcalls.boot_sequence(defer=False)]


def test_figure2_statistics_shape():
    stats = figure2_stats(build_tv_registry())
    assert stats.units == 137  # 136 services + boot target
    assert stats.strong_edges > 0
    assert stats.weak_edges > stats.strong_edges  # most deps are Wants
    assert stats.ordering_edges > 0


def test_workload_bundle_is_consistent():
    workload = opensource_tv_workload()
    registry = workload.fresh_registry()
    assert workload.goal in registry
    for unit in workload.completion_units:
        assert unit in registry
    assert workload.expected_bb_group == PAPER_BB_GROUP
    assert set(workload.groups) == set(registry.names)


def test_analyzer_finds_no_errors_in_tv_workload():
    from repro.graph.analyzer import ServiceAnalyzer

    report = ServiceAnalyzer(build_tv_registry()).analyze()
    assert not report.has_errors
